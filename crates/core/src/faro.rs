//! The Faro multi-tenant autoscaler (paper Sec. 4).
//!
//! Every invocation runs up to three stages:
//!
//! 1. **Per-job formulation** (Sec. 4.1): fetch each job's measured
//!    processing time and arrival history, predict the next window's
//!    arrival-rate distribution, and sample trajectories (cold-start
//!    minutes at the head of the window are skipped, since new replicas
//!    only become useful after startup).
//! 2. **Multi-tenant autoscaling** (Sec. 4.2): maximize the configured
//!    cluster objective under the resource constraints with COBYLA, then
//!    integerize. Beyond [`FaroConfig::hierarchical_threshold`] jobs the
//!    grouped solve of Sec. 3.4 is used.
//! 3. **Shrinking** (Sec. 4.3): reclaim replicas from jobs at predicted
//!    utility 1 while the cluster objective is unchanged.
//!
//! The long-term predictive solve runs every
//! [`FaroConfig::long_term_interval`] (5 min); between solves, a
//! short-term reactive loop (Sec. 4.4) adds one replica to any job whose
//! SLO has been violated for [`FaroConfig::reactive_threshold`] seconds,
//! and never scales down.

use crate::admission::{Admission, ClampToQuota};
use crate::error::Result;
use crate::hetero::HeteroProblem;
use crate::hierarchical::solve_hierarchical;
use crate::objective::ClusterObjective;
use crate::opt::{Fidelity, JobWorkload, LatencyModel, MultiTenantProblem};
use crate::policy::{Policy, PolicyIntrospection};
use crate::predictor::{sanitize_history, RatePredictor};
use crate::sharded::{ShardedSolver, SolvePlan};
use crate::types::{ClassAlloc, ClusterSnapshot, DesiredState, JobDecision};
use crate::units::{DurationMs, RatePerMin, SimTimeMs};
use crate::utility::RelaxedUtility;
use faro_queueing::RelaxedLatency;
use faro_solver::Cobyla;
use rand::prelude::*;

/// Faro configuration; defaults follow the paper (Sec. 4.4 and 5).
#[derive(Debug, Clone, PartialEq)]
pub struct FaroConfig {
    /// Cluster objective to maximize.
    pub objective: ClusterObjective,
    /// Precise (ablation: "no relaxation") or relaxed optimization.
    pub fidelity: Fidelity,
    /// M/D/c (default) or upper-bound latency estimation (ablation).
    pub latency_model: LatencyModel,
    /// Long-term predictive interval in seconds (paper: 5 min).
    pub long_term_interval: f64,
    /// Sustained-violation threshold before a reactive upscale (paper:
    /// 30 s, the same trigger as the baselines).
    pub reactive_threshold: f64,
    /// Prediction window in minutes (paper: 7, overlapping the next
    /// cycle and covering cold start).
    pub prediction_window_minutes: usize,
    /// Cold-start time in minutes skipped at the head of the window.
    pub cold_start_minutes: usize,
    /// Probabilistic trajectories sampled per job (1 = use the mean).
    pub samples: usize,
    /// Stage-3 shrinking on/off (ablation).
    pub use_shrinking: bool,
    /// Short-term reactive autoscaler on/off (ablation).
    pub use_hybrid: bool,
    /// Job count beyond which the hierarchical solve kicks in.
    pub hierarchical_threshold: usize,
    /// Group count for the hierarchical solve (paper default: 10).
    pub groups: usize,
    /// How the long-term solve is organized: one global solve per round
    /// (paper-faithful default) or the sharded incremental path
    /// ([`crate::sharded`]). Sharding is opt-in; the default keeps
    /// every global-path output bit-identical.
    pub solve_plan: SolvePlan,
    /// Relaxed-utility sharpness `alpha`.
    pub alpha: f64,
    /// Relaxed-latency knee `rho_max` (paper: 0.95).
    pub rho_max: f64,
    /// RNG seed (trajectory sampling, grouping).
    pub seed: u64,
    /// Failure-resilient control loop (off by default, keeping the
    /// paper-faithful behavior bit-identical): sanitize corrupted
    /// metric histories before forecasting, carry the last good solve
    /// forward past solver failures, preserve desired allocations
    /// across quota dips, fast-track reactive upscales when a
    /// violation is corroborated by a visible replica deficit, and pad
    /// standing headroom onto jobs with recent involuntary capacity
    /// losses (replica churn).
    pub resilience: bool,
}

impl FaroConfig {
    /// Paper defaults with the given objective.
    pub fn new(objective: ClusterObjective) -> Self {
        Self {
            objective,
            fidelity: Fidelity::Relaxed,
            latency_model: LatencyModel::MDc,
            long_term_interval: 300.0,
            reactive_threshold: 30.0,
            prediction_window_minutes: 7,
            cold_start_minutes: 1,
            samples: 20,
            use_shrinking: true,
            use_hybrid: true,
            hierarchical_threshold: 50,
            groups: 10,
            solve_plan: SolvePlan::Global,
            alpha: 4.0,
            rho_max: 0.95,
            seed: 0,
            resilience: false,
        }
    }
}

/// The Faro autoscaler: one [`RatePredictor`] per job plus the staged
/// optimization.
pub struct FaroAutoscaler {
    config: FaroConfig,
    predictors: Vec<Box<dyn RatePredictor>>,
    solver: Cobyla,
    /// Time of the last long-term solve.
    last_long_term: Option<SimTimeMs>,
    /// Per-job sustained SLO-violation span (reactive trigger).
    violation: Vec<DurationMs>,
    /// Time of the previous tick (for violation accounting).
    last_tick: Option<SimTimeMs>,
    /// Current decisions, carried between ticks.
    current: Vec<JobDecision>,
    /// Last solve that succeeded and validated (resilience carry-forward
    /// cache; never clamped by transient quota dips).
    last_good: Option<Vec<JobDecision>>,
    /// Per-job time of the last fault-corroborated reactive boost
    /// (rate-limits the resilient fast path).
    last_boost: Vec<SimTimeMs>,
    /// Ready replicas seen at the previous tick (involuntary-loss
    /// detection).
    prev_ready: Vec<u32>,
    /// Quota-clamped target actually applied at the previous tick.
    prev_applied: Vec<u32>,
    /// Per-job deadline until which the job counts as churning (crash
    /// headroom is padded onto long-term solves before this time).
    churn_until: Vec<SimTimeMs>,
    /// What the last `decide` round did (solve effort, carry-forward,
    /// sanitization), reported through [`Policy::introspect`].
    intro: PolicyIntrospection,
    /// The sharded solver's persistent state (partition, signatures,
    /// caches), created lazily on the first sharded long-term round.
    sharded: Option<ShardedSolver>,
    rng: StdRng,
    name: String,
}

impl FaroAutoscaler {
    /// Creates the autoscaler with one predictor per job (in job order).
    pub fn new(config: FaroConfig, predictors: Vec<Box<dyn RatePredictor>>) -> Self {
        let name = if config.resilience {
            format!("{}+Resilient", config.objective.name())
        } else {
            config.objective.name().to_string()
        };
        Self {
            rng: StdRng::seed_from_u64(config.seed ^ 0xfa60_5eed),
            solver: Cobyla::fast(),
            config,
            predictors,
            last_long_term: None,
            violation: Vec::new(),
            last_tick: None,
            current: Vec::new(),
            last_good: None,
            last_boost: Vec::new(),
            prev_ready: Vec::new(),
            prev_applied: Vec::new(),
            churn_until: Vec::new(),
            intro: PolicyIntrospection::default(),
            sharded: None,
            name,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FaroConfig {
        &self.config
    }

    /// Stage 1: assembles per-job workloads from predictions.
    ///
    /// With [`FaroConfig::resilience`] on, metric-outage damage is
    /// repaired before it can poison the solve: NaN history minutes are
    /// replaced with the last observed rate (without it, `per_second`'s
    /// NaN-ignoring `max` silently turns a lost scrape into *zero*
    /// predicted load and the solver strips the job to one replica).
    fn formulate(&mut self, snapshot: &ClusterSnapshot) -> Vec<JobWorkload> {
        let w = self.config.prediction_window_minutes;
        let skip = self.config.cold_start_minutes.min(w.saturating_sub(1));
        let resilient = self.config.resilience;
        snapshot
            .jobs
            .iter()
            .enumerate()
            .map(|(i, obs)| {
                let sanitized;
                let history: &[RatePerMin] = if resilient {
                    self.intro.sanitized_samples += obs
                        .arrival_rate_history
                        .iter()
                        .filter(|r| r.is_corrupt())
                        .count() as u64;
                    sanitized = sanitize_history(&obs.arrival_rate_history);
                    &sanitized
                } else {
                    &obs.arrival_rate_history
                };
                let mut forecast = match self.predictors.get_mut(i) {
                    Some(p) => p.predict(history, w),
                    None => {
                        let level = if resilient && !obs.recent_arrival_rate.is_finite() {
                            history.last().map_or(0.0, |r| r.get())
                        } else {
                            obs.recent_arrival_rate * 60.0
                        };
                        faro_forecast::GaussianForecast::new(vec![level; w], vec![1e-9; w])
                    }
                };
                if resilient {
                    // Last-resort guard: a predictor fed clean history
                    // can still emit junk. Reuse the one audited repair
                    // by round-tripping the raw forecast through the
                    // rate newtype.
                    let typed: Vec<RatePerMin> =
                        forecast.mu.iter().map(|&v| RatePerMin::new(v)).collect();
                    forecast.mu = sanitize_history(&typed).iter().map(|r| r.get()).collect();
                    for s in forecast.sigma.iter_mut() {
                        if !s.is_finite() || *s < 0.0 {
                            *s = 1e-9;
                        }
                    }
                }
                let n_samples = self.config.samples.max(1);
                let mut trajectories = Vec::with_capacity(n_samples);
                if n_samples == 1 {
                    trajectories.push(per_second(&forecast.mu[skip..]));
                } else {
                    for _ in 0..n_samples {
                        let s = forecast.sample(&mut self.rng);
                        trajectories.push(per_second(&s[skip..]));
                    }
                }
                let processing_time = if resilient && !obs.mean_processing_time.is_finite() {
                    obs.spec.processing_time
                } else {
                    obs.mean_processing_time
                };
                JobWorkload {
                    lambda_trajectories: trajectories,
                    processing_time: processing_time.max(1e-6),
                    slo: obs.spec.slo,
                    priority: obs.spec.priority,
                }
            })
            .collect()
    }

    /// Stages 2 and 3: solve, integerize, shrink.
    fn long_term(&mut self, snapshot: &ClusterSnapshot) -> Result<Vec<JobDecision>> {
        let jobs = self.formulate(snapshot);
        let current: Vec<u32> = snapshot.jobs.iter().map(|j| j.target_replicas).collect();
        if snapshot.resources.n_classes() > 1 {
            return self.long_term_hetero(snapshot, jobs, &current);
        }
        let (mut replicas, drop_rates) = if let SolvePlan::Sharded(scfg) = self.config.solve_plan {
            // Like the hierarchical branch, the sharded path sticks to
            // the problem's default latency model and relaxations: the
            // within-shard solves own those knobs.
            let seed = self.config.seed;
            let sharded = self
                .sharded
                .get_or_insert_with(|| ShardedSolver::new(scfg, seed));
            let out = sharded.solve(
                &jobs,
                snapshot.resources.clone(),
                self.config.objective,
                self.config.fidelity,
                &self.solver,
                &current,
            )?;
            self.intro.solver_evals += out.record.evals + out.record.split_evals;
            self.intro.shard_record = Some(out.record);
            self.intro.shard_spans = out.shard_spans;
            (out.replicas, out.drop_rates)
        } else if jobs.len() > self.config.hierarchical_threshold {
            let out = solve_hierarchical(
                &jobs,
                snapshot.resources.clone(),
                self.config.objective,
                self.config.fidelity,
                &self.solver,
                &current,
                self.config.groups,
                self.config.seed,
            )?;
            self.intro.solver_evals += out.evals as u64;
            (out.replicas, out.drop_rates)
        } else {
            let problem = MultiTenantProblem::new(
                jobs,
                snapshot.resources.clone(),
                self.config.objective,
                self.config.fidelity,
            )?
            .with_latency_model(self.config.latency_model)
            .with_utility(RelaxedUtility::new(self.config.alpha))
            .with_relaxed_latency(
                RelaxedLatency::new(self.config.rho_max).map_err(crate::error::Error::from)?,
            );
            let alloc = problem.solve(&self.solver, &current)?;
            self.intro.solver_evals += alloc.evals as u64;
            let mut xs = problem.integerize(&alloc);
            if self.config.use_shrinking {
                problem.shrink(&mut xs, &alloc.drop_rates);
            }
            (xs, alloc.drop_rates)
        };

        // Defensive floor (solvers already respect bounds).
        for x in replicas.iter_mut() {
            *x = (*x).max(1);
        }
        Ok(replicas
            .into_iter()
            .zip(drop_rates)
            .map(|(r, d)| JobDecision::replicas(r).with_drop_rate(d))
            .collect())
    }

    /// Class-aware stages 2 and 3 for clusters with two or more replica
    /// classes: one flat [`HeteroProblem`] solve, class-aware
    /// integerize, class-aware shrink.
    ///
    /// The flat classed solve replaces the sharded and hierarchical
    /// organizations here — both partition a *scalar* quota, which has
    /// no unique meaning under a vector capacity. A one-class table
    /// never reaches this path: it routes through the scalar pipeline
    /// (bit-identical by construction) and actuates on class 0. The
    /// upper-bound latency ablation is likewise scalar-only; the mixed
    /// pool always scores M/D/c on its effective service time.
    fn long_term_hetero(
        &mut self,
        snapshot: &ClusterSnapshot,
        jobs: Vec<JobWorkload>,
        current: &[u32],
    ) -> Result<Vec<JobDecision>> {
        let masks: Vec<Vec<bool>> = snapshot
            .jobs
            .iter()
            .map(|o| {
                snapshot
                    .resources
                    .classes
                    .iter()
                    .map(|c| o.spec.allows_class(&c.name))
                    .collect()
            })
            .collect();
        let problem = HeteroProblem::new(
            jobs,
            snapshot.resources.clone(),
            self.config.objective,
            self.config.fidelity,
        )?
        .with_utility(RelaxedUtility::new(self.config.alpha))
        .with_relaxed_latency(
            RelaxedLatency::new(self.config.rho_max).map_err(crate::error::Error::from)?,
        )
        .with_affinity(masks)?;
        let alloc = problem.solve(&self.solver, current)?;
        self.intro.solver_evals += alloc.evals as u64;
        let mut allocs = problem.integerize(&alloc);
        if self.config.use_shrinking {
            problem.shrink(&mut allocs, &alloc.drop_rates);
        }
        Ok(allocs
            .into_iter()
            .zip(alloc.drop_rates)
            .map(|(a, d)| JobDecision::classed(a).with_drop_rate(d))
            .collect())
    }

    /// Adds one replica to job `i`'s current decision if capacity
    /// allows: the scalar quota check in the homogeneous regime, the
    /// fastest allowed class with vector headroom in the classed one.
    /// Returns whether a replica was added.
    fn add_one_replica(&mut self, snapshot: &ClusterSnapshot, i: usize) -> bool {
        let res = &snapshot.resources;
        if res.n_classes() > 1 {
            // Totals over every job's classed decision; classless
            // decisions (e.g. carried forward from before the first
            // classed solve) count as class 0.
            let mut totals = ClassAlloc::zero(res.n_classes());
            for d in &self.current {
                match d.classes {
                    Some(a) => {
                        for (c, &k) in a.as_slice().iter().enumerate() {
                            totals.add(c, i64::from(k));
                        }
                    }
                    None => totals.add(0, i64::from(d.target_replicas)),
                }
            }
            let usage = res.usage_of(&totals);
            // Fastest class first: a reactive boost exists to kill a
            // live SLO violation, so it buys the largest service-rate
            // increment that still fits.
            let mut order: Vec<usize> = (0..res.n_classes()).collect();
            order.sort_by(|&a, &b| {
                res.classes[a]
                    .speed
                    .partial_cmp(&res.classes[b].speed)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for c in order {
                if !snapshot.jobs[i].spec.allows_class(&res.classes[c].name) {
                    continue;
                }
                let mut padded = usage;
                for (u, k) in padded.iter_mut().zip(res.classes[c].cost()) {
                    *u += k;
                }
                if res.fits(&padded) {
                    let target = self.current[i].target_replicas;
                    let alloc = self.current[i]
                        .classes
                        .get_or_insert_with(|| ClassAlloc::single(0, target, res.n_classes()));
                    alloc.add(c, 1);
                    self.current[i].target_replicas = target + 1;
                    return true;
                }
            }
            false
        } else {
            let quota = snapshot.replica_quota();
            let total: u32 = self.current.iter().map(|d| d.target_replicas).sum();
            if total < quota.get() {
                self.current[i].target_replicas += 1;
                true
            } else {
                false
            }
        }
    }

    /// Short-term reactive pass: additive upscale on sustained
    /// violation; never downscales (Sec. 4.4).
    ///
    /// With [`FaroConfig::resilience`] on, two failure-aware rules are
    /// added: a NaN tail latency (metric outage) *holds* the violation
    /// clock instead of resetting it, and a violation corroborated by a
    /// visible replica deficit (`ready < target`, i.e. something
    /// crashed or was evicted) upscales immediately instead of waiting
    /// out the full threshold — rate-limited to one boost per threshold
    /// interval per job.
    fn reactive(&mut self, snapshot: &ClusterSnapshot, dt: DurationMs) {
        let resilient = self.config.resilience;
        for (i, obs) in snapshot.jobs.iter().enumerate() {
            if resilient && obs.recent_tail_latency.is_nan() {
                continue; // Lost scrape: hold the clock, don't reset it.
            }
            let violated = obs.recent_tail_latency > obs.spec.slo.latency;
            if violated {
                self.violation[i] = self.violation[i] + dt;
            } else {
                self.violation[i] = DurationMs::ZERO;
            }
            let deficit = obs.ready_replicas < self.current[i].target_replicas;
            let fast_path = resilient
                && violated
                && deficit
                && (snapshot.now - self.last_boost[i]).as_secs() >= self.config.reactive_threshold;
            if (fast_path || self.violation[i].as_secs() >= self.config.reactive_threshold)
                && self.add_one_replica(snapshot, i)
            {
                self.violation[i] = DurationMs::ZERO;
                self.last_boost[i] = snapshot.now;
            }
        }
    }

    /// Detects involuntary capacity loss — the crash signature: ready
    /// replicas *dropped* since the previous tick, below what the
    /// previously *applied* (quota-clamped) target requested. Voluntary
    /// scale-downs never match (the simulator retires replicas down to
    /// the new target, so ready lands *at* the applied target, not
    /// below it), quota-dip evictions never match (the clamp lowers the
    /// applied target first), and cold starts only raise the ready
    /// count — so the no-fault path never trips this.
    ///
    /// A detected loss marks the job as churning for
    /// [`CHURN_WINDOW_SOLVES`] long-term intervals and, when quota
    /// allows, boosts the target immediately (sharing the reactive fast
    /// path's per-job rate limit).
    fn detect_churn(&mut self, snapshot: &ClusterSnapshot) {
        for i in 0..snapshot.jobs.len() {
            let obs = &snapshot.jobs[i];
            let lost = obs.ready_replicas < self.prev_ready[i]
                && obs.ready_replicas < self.prev_applied[i];
            let ready = obs.ready_replicas;
            if lost {
                self.churn_until[i] = snapshot.now
                    + DurationMs::from_secs(CHURN_WINDOW_SOLVES * self.config.long_term_interval);
                if (snapshot.now - self.last_boost[i]).as_secs() >= self.config.reactive_threshold
                    && self.add_one_replica(snapshot, i)
                {
                    self.last_boost[i] = snapshot.now;
                }
            }
            self.prev_ready[i] = ready;
        }
    }

    /// Pads one replica of standing headroom onto each churning job
    /// after a long-term solve (quota permitting). The solver sizes
    /// allocations assuming replicas stay up; under churn one replica
    /// is perpetually mid-cold-start somewhere, and every crash opens a
    /// cold-start-long capacity hole that the headroom absorbs.
    fn pad_churn_headroom(&mut self, snapshot: &ClusterSnapshot) {
        for i in 0..self.current.len() {
            if self.churn_until[i] > snapshot.now {
                let _ = self.add_one_replica(snapshot, i);
            }
        }
    }
}

/// How many long-term intervals a job stays "churning" after an
/// involuntary capacity loss (crash headroom padding window).
const CHURN_WINDOW_SOLVES: f64 = 2.0;

fn per_second(per_minute: &[f64]) -> Vec<f64> {
    per_minute.iter().map(|&r| (r / 60.0).max(0.0)).collect()
}

impl Policy for FaroAutoscaler {
    fn name(&self) -> &str {
        &self.name
    }

    fn introspect(&self) -> PolicyIntrospection {
        self.intro.clone()
    }

    fn decide(&mut self, snapshot: &ClusterSnapshot) -> DesiredState {
        self.intro = PolicyIntrospection::default();
        let n = snapshot.jobs.len();
        if self.current.len() != n {
            self.current = snapshot.jobs.iter().map(JobDecision::keep).collect();
            self.violation = vec![DurationMs::ZERO; n];
            self.last_boost = vec![SimTimeMs::MIN; n];
            self.last_good = None;
            self.prev_ready = snapshot.jobs.iter().map(|j| j.ready_replicas).collect();
            self.prev_applied = self.current.iter().map(|d| d.target_replicas).collect();
            self.churn_until = vec![SimTimeMs::MIN; n];
        }
        let dt = self.last_tick.map_or(DurationMs::ZERO, |t| {
            let d = snapshot.now - t;
            if d.is_negative() {
                DurationMs::ZERO
            } else {
                d
            }
        });
        self.last_tick = Some(snapshot.now);
        if self.config.resilience {
            self.detect_churn(snapshot);
        }

        let due = self
            .last_long_term
            .is_none_or(|t| (snapshot.now - t).as_secs() >= self.config.long_term_interval);
        if due {
            self.last_long_term = Some(snapshot.now);
            self.intro.long_term_solve = true;
            match self.long_term(snapshot) {
                Ok(decisions) if !self.config.resilience || decisions_valid(&decisions) => {
                    if self.config.resilience {
                        self.last_good = Some(decisions.clone());
                    }
                    self.current = decisions;
                    self.violation
                        .iter_mut()
                        .for_each(|v| *v = DurationMs::ZERO);
                    if self.config.resilience {
                        self.pad_churn_headroom(snapshot);
                    }
                }
                _ => {
                    // Keep the previous allocation on solver failure —
                    // an autoscaler must not crash the control loop.
                    // The resilient variant restores the last *good*
                    // solve, which unlike `current` was never clamped
                    // by a transient quota dip.
                    self.intro.carried_forward = true;
                    if self.config.resilience {
                        if let Some(good) = &self.last_good {
                            if good.len() == n {
                                self.current = good.clone();
                            }
                        }
                    }
                }
            }
        } else if self.config.use_hybrid {
            self.reactive(snapshot, dt);
        }

        let mut out: DesiredState = snapshot
            .job_ids()
            .zip(self.current.iter().copied())
            .collect();
        ClampToQuota.admit(snapshot, &mut out);
        if self.config.resilience {
            // Record the applied (clamped) targets so the next tick's
            // churn detection can tell a voluntary shrink or quota
            // clamp from a crash.
            for ((_, d), prev) in out.iter().zip(self.prev_applied.iter_mut()) {
                *prev = d.target_replicas;
            }
        } else {
            // Paper-faithful behavior: the clamped allocation becomes
            // the carried state. The resilient variant instead keeps
            // its desired state so capacity snaps back the moment a
            // node outage ends.
            self.current = out.iter().map(|(_, d)| d).collect();
        }
        out
    }
}

/// A solve is usable when every decision is in-domain; junk decisions
/// (NaN drop rates from a poisoned objective) trip the carry-forward.
fn decisions_valid(decisions: &[JobDecision]) -> bool {
    decisions
        .iter()
        .all(|d| d.target_replicas >= 1 && d.drop_rate.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::FlatPredictor;
    use crate::types::{JobObservation, JobSpec, ResourceModel};

    fn obs(rate_per_min: f64, target: u32, tail: f64) -> JobObservation {
        JobObservation {
            spec: std::sync::Arc::new(JobSpec::resnet34("job")),
            target_replicas: target,
            ready_replicas: target,
            queue_len: 0,
            arrival_rate_history: std::sync::Arc::new(vec![RatePerMin::new(rate_per_min); 15]),
            recent_arrival_rate: rate_per_min / 60.0,
            mean_processing_time: 0.180,
            recent_tail_latency: tail,
            drop_rate: 0.0,
            class_target: None,
            class_ready: None,
        }
    }

    fn snapshot(now: f64, quota: u32, jobs: Vec<JobObservation>) -> ClusterSnapshot {
        ClusterSnapshot {
            now: SimTimeMs::from_secs(now),
            resources: ResourceModel::replicas(crate::units::ReplicaCount::new(quota)),
            jobs,
        }
    }

    fn t0(ds: &DesiredState) -> u32 {
        ds.get(crate::types::JobId::new(0)).unwrap().target_replicas
    }

    fn faro(objective: ClusterObjective, n_jobs: usize) -> FaroAutoscaler {
        let predictors: Vec<Box<dyn RatePredictor>> = (0..n_jobs)
            .map(|_| {
                Box::new(FlatPredictor {
                    lookback: 3,
                    sigma_fraction: 0.1,
                }) as Box<dyn RatePredictor>
            })
            .collect();
        let mut cfg = FaroConfig::new(objective);
        cfg.samples = 8;
        FaroAutoscaler::new(cfg, predictors)
    }

    #[test]
    fn allocates_more_to_heavier_job() {
        let mut f = faro(ClusterObjective::Sum, 2);
        let snap = snapshot(0.0, 32, vec![obs(2400.0, 1, 0.1), obs(300.0, 1, 0.1)]);
        let ds = f.decide(&snap);
        assert_eq!(ds.len(), 2);
        assert!(
            t0(&ds) > ds.get(crate::types::JobId::new(1)).unwrap().target_replicas,
            "{ds:?}"
        );
        assert!(ds.total_replicas() <= 32);
        // 2400/min = 40/s at 180 ms needs ~8+ replicas.
        assert!(t0(&ds) >= 8, "{ds:?}");
    }

    #[test]
    fn long_term_cadence_respected() {
        let mut f = faro(ClusterObjective::Sum, 1);
        let d0 = f.decide(&snapshot(0.0, 16, vec![obs(1200.0, 1, 0.1)]));
        // 10 s later with a huge rate change: long-term must NOT rerun.
        let d1 = f.decide(&snapshot(10.0, 16, vec![obs(6000.0, t0(&d0), 0.1)]));
        assert_eq!(t0(&d0), t0(&d1));
        // 300 s later it must rerun and scale up.
        let d2 = f.decide(&snapshot(300.0, 16, vec![obs(6000.0, t0(&d1), 0.1)]));
        assert!(t0(&d2) > t0(&d1), "{d2:?}");
    }

    #[test]
    fn reactive_upscales_after_sustained_violation() {
        let mut f = faro(ClusterObjective::Sum, 1);
        let d0 = f.decide(&snapshot(0.0, 16, vec![obs(600.0, 1, 0.1)]));
        let base = t0(&d0);
        // Three 10 s ticks of violation -> 30 s sustained -> +1.
        let mut last = base;
        for (i, t) in [10.0, 20.0, 30.0].iter().enumerate() {
            let d = f.decide(&snapshot(*t, 16, vec![obs(600.0, last, 5.0)]));
            last = t0(&d);
            if i < 2 {
                assert_eq!(last, base, "no upscale before the threshold");
            }
        }
        assert_eq!(last, base + 1, "one additive upscale after 30 s");
    }

    #[test]
    fn reactive_never_downscales() {
        let mut f = faro(ClusterObjective::Sum, 1);
        let d0 = f.decide(&snapshot(0.0, 16, vec![obs(1200.0, 1, 0.1)]));
        let base = t0(&d0);
        // Healthy latency for many short ticks: replicas must not drop.
        for t in [10.0, 20.0, 30.0, 40.0] {
            let d = f.decide(&snapshot(t, 16, vec![obs(10.0, base, 0.05)]));
            assert!(t0(&d) >= base);
        }
    }

    #[test]
    fn hybrid_ablation_disables_reactive() {
        let predictors: Vec<Box<dyn RatePredictor>> = vec![Box::new(FlatPredictor::default())];
        let mut cfg = FaroConfig::new(ClusterObjective::Sum);
        cfg.use_hybrid = false;
        cfg.samples = 4;
        let mut f = FaroAutoscaler::new(cfg, predictors);
        let d0 = f.decide(&snapshot(0.0, 16, vec![obs(600.0, 1, 0.1)]));
        let base = t0(&d0);
        for t in [10.0, 20.0, 30.0, 40.0, 50.0] {
            let d = f.decide(&snapshot(t, 16, vec![obs(600.0, base, 9.0)]));
            assert_eq!(t0(&d), base, "reactive disabled");
        }
    }

    #[test]
    fn quota_respected_with_many_needy_jobs() {
        let mut f = faro(ClusterObjective::FairSum { gamma: 4.0 }, 4);
        let jobs = (0..4).map(|_| obs(3000.0, 1, 0.1)).collect();
        let ds = f.decide(&snapshot(0.0, 12, jobs));
        assert!(ds.total_replicas() <= 12);
        assert!(ds.targets().all(|t| t >= 1));
    }

    fn faro_resilient(objective: ClusterObjective, n_jobs: usize) -> FaroAutoscaler {
        let predictors: Vec<Box<dyn RatePredictor>> = (0..n_jobs)
            .map(|_| {
                Box::new(FlatPredictor {
                    lookback: 3,
                    sigma_fraction: 0.1,
                }) as Box<dyn RatePredictor>
            })
            .collect();
        let mut cfg = FaroConfig::new(objective);
        cfg.samples = 8;
        cfg.resilience = true;
        FaroAutoscaler::new(cfg, predictors)
    }

    fn corrupt(mut o: JobObservation) -> JobObservation {
        let n = o.arrival_rate_history.len();
        for v in std::sync::Arc::make_mut(&mut o.arrival_rate_history)
            .iter_mut()
            .skip(n - 5)
        {
            *v = RatePerMin::NAN;
        }
        o.recent_arrival_rate = f64::NAN;
        o.recent_tail_latency = f64::NAN;
        o
    }

    #[test]
    fn resilient_name_is_tagged() {
        assert_eq!(faro(ClusterObjective::Sum, 1).name(), "Faro-Sum");
        assert_eq!(
            faro_resilient(ClusterObjective::Sum, 1).name(),
            "Faro-Sum+Resilient"
        );
    }

    #[test]
    fn metric_outage_collapses_only_the_nonresilient_variant() {
        // A NaN history mean flows through per_second's NaN-ignoring
        // max() as *zero load*, so the plain autoscaler strips the job.
        let run = |mut f: FaroAutoscaler| {
            let d0 = f.decide(&snapshot(0.0, 32, vec![obs(2400.0, 1, 0.1)]));
            let base = t0(&d0);
            assert!(base >= 8, "healthy solve sizes for the load: {base}");
            let d1 = f.decide(&snapshot(300.0, 32, vec![corrupt(obs(2400.0, base, 0.1))]));
            t0(&d1)
        };
        let plain = run(faro(ClusterObjective::Sum, 1));
        let resilient = run(faro_resilient(ClusterObjective::Sum, 1));
        assert!(plain <= 2, "lost scrape reads as zero load: {plain}");
        assert!(
            resilient >= 8,
            "sanitized history preserves the allocation: {resilient}"
        );
    }

    #[test]
    fn nan_tail_holds_the_violation_clock() {
        let mut f = faro_resilient(ClusterObjective::Sum, 1);
        let d0 = f.decide(&snapshot(0.0, 16, vec![obs(600.0, 1, 0.1)]));
        let base = t0(&d0);
        // 20 s of violation, then a NaN scrape, then more violation:
        // the clock must not reset at the NaN tick.
        let o = |tail: f64| obs(600.0, base, tail);
        f.decide(&snapshot(10.0, 16, vec![o(5.0)]));
        f.decide(&snapshot(20.0, 16, vec![o(5.0)]));
        let mut gap = o(f64::NAN);
        gap.recent_tail_latency = f64::NAN;
        f.decide(&snapshot(30.0, 16, vec![gap]));
        let d = f.decide(&snapshot(40.0, 16, vec![o(5.0)]));
        assert_eq!(
            t0(&d),
            base + 1,
            "30 s of accumulated violation crossed the threshold"
        );
    }

    #[test]
    fn corroborated_deficit_fast_tracks_the_upscale() {
        let mk_obs = |base: u32| {
            let mut o = obs(600.0, base, 5.0);
            o.ready_replicas = base.saturating_sub(1); // A replica died.
            o
        };
        // Plain: a single violated tick is far below the 30 s threshold.
        let mut plain = faro(ClusterObjective::Sum, 1);
        let base = t0(&plain.decide(&snapshot(0.0, 16, vec![obs(600.0, 1, 0.1)])));
        let d = plain.decide(&snapshot(10.0, 16, vec![mk_obs(base)]));
        assert_eq!(t0(&d), base, "plain variant waits 30 s");
        // Resilient: violation + visible deficit upscales immediately,
        // but only once per threshold interval.
        let mut res = faro_resilient(ClusterObjective::Sum, 1);
        let base = t0(&res.decide(&snapshot(0.0, 16, vec![obs(600.0, 1, 0.1)])));
        let d = res.decide(&snapshot(10.0, 16, vec![mk_obs(base)]));
        assert_eq!(t0(&d), base + 1, "fast path fired");
        let d = res.decide(&snapshot(20.0, 16, vec![mk_obs(base + 1)]));
        assert_eq!(t0(&d), base + 1, "rate-limited");
    }

    #[test]
    fn churn_headroom_pads_after_involuntary_loss() {
        let seq = |mut f: FaroAutoscaler| {
            let base = t0(&f.decide(&snapshot(0.0, 32, vec![obs(600.0, 1, 0.1)])));
            assert!(base >= 2);
            f.decide(&snapshot(10.0, 32, vec![obs(600.0, base, 0.1)]));
            // A replica dies while latency is still healthy: no
            // violation, so only loss detection can react.
            let mut crashed = obs(600.0, base, 0.1);
            crashed.ready_replicas = base - 1;
            let d20 = t0(&f.decide(&snapshot(20.0, 32, vec![crashed])));
            // Next long-term solve, same load and the same solver
            // starting point for both variants.
            let d300 = t0(&f.decide(&snapshot(300.0, 32, vec![obs(600.0, base, 0.1)])));
            (base, d20, d300)
        };
        let (pb, p20, p300) = seq(faro(ClusterObjective::Sum, 1));
        assert_eq!(p20, pb, "plain variant ignores a healthy-latency crash");
        let (rb, r20, r300) = seq(faro_resilient(ClusterObjective::Sum, 1));
        assert_eq!(rb, pb, "identical first solve");
        assert_eq!(r20, rb + 1, "loss detection boosts immediately");
        assert_eq!(r300, p300 + 1, "long-term solve pads churn headroom");
    }

    #[test]
    fn resilient_variant_restores_desired_state_after_quota_dip() {
        let heavy = 2400.0;
        let run = |mut f: FaroAutoscaler| {
            let d0 = f.decide(&snapshot(0.0, 32, vec![obs(heavy, 1, 0.1)]));
            let base = t0(&d0);
            assert!(base >= 8);
            // A node outage halves the quota for one tick.
            let d1 = f.decide(&snapshot(10.0, 4, vec![obs(heavy, base, 0.1)]));
            assert!(t0(&d1) <= 4, "clamped during the outage");
            // Outage over; no long-term solve is due until t=300.
            let d2 = f.decide(&snapshot(20.0, 32, vec![obs(heavy, t0(&d1), 0.1)]));
            (base, t0(&d2))
        };
        let (base, after) = run(faro_resilient(ClusterObjective::Sum, 1));
        assert_eq!(after, base, "desired state snaps back instantly");
        let (base, after) = run(faro(ClusterObjective::Sum, 1));
        assert!(
            after < base,
            "paper-faithful variant stays clamped until the next solve"
        );
    }

    #[test]
    fn sharded_plan_solves_cold_and_reuses_cache_warm() {
        use crate::sharded::ShardConfig;
        let n = 9;
        let predictors: Vec<Box<dyn RatePredictor>> = (0..n)
            .map(|_| Box::new(FlatPredictor::default()) as Box<dyn RatePredictor>)
            .collect();
        let mut cfg = FaroConfig::new(ClusterObjective::Sum);
        cfg.solve_plan = SolvePlan::Sharded(ShardConfig::with_shards(3));
        cfg.samples = 1; // Mean trajectory: warm rounds see zero drift.
        let mut f = FaroAutoscaler::new(cfg, predictors);
        let mk = |target: u32| {
            (0..n)
                .map(|i| obs(600.0 + 100.0 * i as f64, target, 0.1))
                .collect::<Vec<_>>()
        };
        let d0 = f.decide(&snapshot(0.0, 60, mk(1)));
        assert_eq!(d0.len(), n);
        assert!(d0.total_replicas() <= 60);
        let intro = f.introspect();
        let rec = intro.shard_record.expect("sharded round recorded");
        assert_eq!(rec.shards, 3);
        assert_eq!(rec.solved, 3, "cold round solves every shard");
        assert_eq!(intro.shard_spans.len(), 3);
        assert!(intro.solver_evals > 0);
        // Same load at the next long-term round: fully clean.
        let d1 = f.decide(&snapshot(300.0, 60, mk(1)));
        let rec = f.introspect().shard_record.expect("warm round recorded");
        assert_eq!(rec.solved, 0, "clean warm round skips every shard");
        assert_eq!(rec.cache_hit_jobs, n as u32);
        assert_eq!(d1, d0, "cached decisions are unchanged");
        // Reactive ticks between solves report no shard record.
        f.decide(&snapshot(310.0, 60, mk(1)));
        assert!(f.introspect().shard_record.is_none());
    }

    #[test]
    fn hierarchical_path_used_for_many_jobs() {
        let n = 12;
        let predictors: Vec<Box<dyn RatePredictor>> = (0..n)
            .map(|_| Box::new(FlatPredictor::default()) as Box<dyn RatePredictor>)
            .collect();
        let mut cfg = FaroConfig::new(ClusterObjective::Sum);
        cfg.hierarchical_threshold = 8; // Force the grouped path.
        cfg.groups = 3;
        cfg.samples = 2;
        let mut f = FaroAutoscaler::new(cfg, predictors);
        let jobs = (0..n)
            .map(|i| obs(600.0 + 100.0 * i as f64, 1, 0.1))
            .collect();
        let ds = f.decide(&snapshot(0.0, 60, jobs));
        assert_eq!(ds.len(), n);
        assert!(ds.total_replicas() <= 60);
    }
}
