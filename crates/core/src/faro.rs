//! The Faro multi-tenant autoscaler (paper Sec. 4).
//!
//! Every invocation runs up to three stages:
//!
//! 1. **Per-job formulation** (Sec. 4.1): fetch each job's measured
//!    processing time and arrival history, predict the next window's
//!    arrival-rate distribution, and sample trajectories (cold-start
//!    minutes at the head of the window are skipped, since new replicas
//!    only become useful after startup).
//! 2. **Multi-tenant autoscaling** (Sec. 4.2): maximize the configured
//!    cluster objective under the resource constraints with COBYLA, then
//!    integerize. Beyond [`FaroConfig::hierarchical_threshold`] jobs the
//!    grouped solve of Sec. 3.4 is used.
//! 3. **Shrinking** (Sec. 4.3): reclaim replicas from jobs at predicted
//!    utility 1 while the cluster objective is unchanged.
//!
//! The long-term predictive solve runs every
//! [`FaroConfig::long_term_interval`] (5 min); between solves, a
//! short-term reactive loop (Sec. 4.4) adds one replica to any job whose
//! SLO has been violated for [`FaroConfig::reactive_threshold`] seconds,
//! and never scales down.

use crate::error::Result;
use crate::hierarchical::solve_hierarchical;
use crate::objective::ClusterObjective;
use crate::opt::{Fidelity, JobWorkload, LatencyModel, MultiTenantProblem};
use crate::policy::{enforce_quota, Policy};
use crate::predictor::RatePredictor;
use crate::types::{ClusterSnapshot, JobDecision};
use crate::utility::RelaxedUtility;
use faro_queueing::RelaxedLatency;
use faro_solver::Cobyla;
use rand::prelude::*;

/// Faro configuration; defaults follow the paper (Sec. 4.4 and 5).
#[derive(Debug, Clone, PartialEq)]
pub struct FaroConfig {
    /// Cluster objective to maximize.
    pub objective: ClusterObjective,
    /// Precise (ablation: "no relaxation") or relaxed optimization.
    pub fidelity: Fidelity,
    /// M/D/c (default) or upper-bound latency estimation (ablation).
    pub latency_model: LatencyModel,
    /// Long-term predictive interval in seconds (paper: 5 min).
    pub long_term_interval: f64,
    /// Sustained-violation threshold before a reactive upscale (paper:
    /// 30 s, the same trigger as the baselines).
    pub reactive_threshold: f64,
    /// Prediction window in minutes (paper: 7, overlapping the next
    /// cycle and covering cold start).
    pub prediction_window_minutes: usize,
    /// Cold-start time in minutes skipped at the head of the window.
    pub cold_start_minutes: usize,
    /// Probabilistic trajectories sampled per job (1 = use the mean).
    pub samples: usize,
    /// Stage-3 shrinking on/off (ablation).
    pub use_shrinking: bool,
    /// Short-term reactive autoscaler on/off (ablation).
    pub use_hybrid: bool,
    /// Job count beyond which the hierarchical solve kicks in.
    pub hierarchical_threshold: usize,
    /// Group count for the hierarchical solve (paper default: 10).
    pub groups: usize,
    /// Relaxed-utility sharpness `alpha`.
    pub alpha: f64,
    /// Relaxed-latency knee `rho_max` (paper: 0.95).
    pub rho_max: f64,
    /// RNG seed (trajectory sampling, grouping).
    pub seed: u64,
}

impl FaroConfig {
    /// Paper defaults with the given objective.
    pub fn new(objective: ClusterObjective) -> Self {
        Self {
            objective,
            fidelity: Fidelity::Relaxed,
            latency_model: LatencyModel::MDc,
            long_term_interval: 300.0,
            reactive_threshold: 30.0,
            prediction_window_minutes: 7,
            cold_start_minutes: 1,
            samples: 20,
            use_shrinking: true,
            use_hybrid: true,
            hierarchical_threshold: 50,
            groups: 10,
            alpha: 4.0,
            rho_max: 0.95,
            seed: 0,
        }
    }
}

/// The Faro autoscaler: one [`RatePredictor`] per job plus the staged
/// optimization.
pub struct FaroAutoscaler {
    config: FaroConfig,
    predictors: Vec<Box<dyn RatePredictor>>,
    solver: Cobyla,
    /// Time of the last long-term solve.
    last_long_term: Option<f64>,
    /// Per-job sustained SLO-violation seconds (reactive trigger).
    violation_secs: Vec<f64>,
    /// Time of the previous tick (for violation accounting).
    last_tick: Option<f64>,
    /// Current decisions, carried between ticks.
    current: Vec<JobDecision>,
    rng: StdRng,
    name: String,
}

impl FaroAutoscaler {
    /// Creates the autoscaler with one predictor per job (in job order).
    pub fn new(config: FaroConfig, predictors: Vec<Box<dyn RatePredictor>>) -> Self {
        let name = config.objective.name().to_string();
        Self {
            rng: StdRng::seed_from_u64(config.seed ^ 0xfa60_5eed),
            solver: Cobyla::fast(),
            config,
            predictors,
            last_long_term: None,
            violation_secs: Vec::new(),
            last_tick: None,
            current: Vec::new(),
            name,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FaroConfig {
        &self.config
    }

    /// Stage 1: assembles per-job workloads from predictions.
    fn formulate(&mut self, snapshot: &ClusterSnapshot) -> Vec<JobWorkload> {
        let w = self.config.prediction_window_minutes;
        let skip = self.config.cold_start_minutes.min(w.saturating_sub(1));
        snapshot
            .jobs
            .iter()
            .enumerate()
            .map(|(i, obs)| {
                let forecast = match self.predictors.get_mut(i) {
                    Some(p) => p.predict(&obs.arrival_rate_history, w),
                    None => faro_forecast::GaussianForecast::new(
                        vec![obs.recent_arrival_rate * 60.0; w],
                        vec![1e-9; w],
                    ),
                };
                let n_samples = self.config.samples.max(1);
                let mut trajectories = Vec::with_capacity(n_samples);
                if n_samples == 1 {
                    trajectories.push(per_second(&forecast.mu[skip..]));
                } else {
                    for _ in 0..n_samples {
                        let s = forecast.sample(&mut self.rng);
                        trajectories.push(per_second(&s[skip..]));
                    }
                }
                JobWorkload {
                    lambda_trajectories: trajectories,
                    processing_time: obs.mean_processing_time.max(1e-6),
                    slo: obs.spec.slo,
                    priority: obs.spec.priority,
                }
            })
            .collect()
    }

    /// Stages 2 and 3: solve, integerize, shrink.
    fn long_term(&mut self, snapshot: &ClusterSnapshot) -> Result<Vec<JobDecision>> {
        let jobs = self.formulate(snapshot);
        let current: Vec<u32> = snapshot.jobs.iter().map(|j| j.target_replicas).collect();
        let (mut replicas, drop_rates) = if jobs.len() > self.config.hierarchical_threshold {
            let out = solve_hierarchical(
                &jobs,
                snapshot.resources,
                self.config.objective,
                self.config.fidelity,
                &self.solver,
                &current,
                self.config.groups,
                self.config.seed,
            )?;
            (out.replicas, out.drop_rates)
        } else {
            let problem = MultiTenantProblem::new(
                jobs,
                snapshot.resources,
                self.config.objective,
                self.config.fidelity,
            )?
            .with_latency_model(self.config.latency_model)
            .with_utility(RelaxedUtility::new(self.config.alpha))
            .with_relaxed_latency(
                RelaxedLatency::new(self.config.rho_max).map_err(crate::error::Error::from)?,
            );
            let alloc = problem.solve(&self.solver, &current)?;
            let mut xs = problem.integerize(&alloc);
            if self.config.use_shrinking {
                problem.shrink(&mut xs, &alloc.drop_rates);
            }
            (xs, alloc.drop_rates)
        };

        // Defensive floor (solvers already respect bounds).
        for x in replicas.iter_mut() {
            *x = (*x).max(1);
        }
        Ok(replicas
            .into_iter()
            .zip(drop_rates)
            .map(|(r, d)| JobDecision {
                target_replicas: r,
                drop_rate: d,
            })
            .collect())
    }

    /// Short-term reactive pass: additive upscale on sustained
    /// violation; never downscales (Sec. 4.4).
    fn reactive(&mut self, snapshot: &ClusterSnapshot, dt: f64) {
        let quota = snapshot.replica_quota();
        for (i, obs) in snapshot.jobs.iter().enumerate() {
            let violated = obs.recent_tail_latency > obs.spec.slo.latency;
            if violated {
                self.violation_secs[i] += dt;
            } else {
                self.violation_secs[i] = 0.0;
            }
            if self.violation_secs[i] >= self.config.reactive_threshold {
                let total: u32 = self.current.iter().map(|d| d.target_replicas).sum();
                if total < quota {
                    self.current[i].target_replicas += 1;
                    self.violation_secs[i] = 0.0;
                }
            }
        }
    }
}

fn per_second(per_minute: &[f64]) -> Vec<f64> {
    per_minute.iter().map(|&r| (r / 60.0).max(0.0)).collect()
}

impl Policy for FaroAutoscaler {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, snapshot: &ClusterSnapshot) -> Vec<JobDecision> {
        let n = snapshot.jobs.len();
        if self.current.len() != n {
            self.current = snapshot.jobs.iter().map(JobDecision::keep).collect();
            self.violation_secs = vec![0.0; n];
        }
        let dt = self.last_tick.map_or(0.0, |t| (snapshot.now - t).max(0.0));
        self.last_tick = Some(snapshot.now);

        let due = self
            .last_long_term
            .is_none_or(|t| snapshot.now - t >= self.config.long_term_interval);
        if due {
            self.last_long_term = Some(snapshot.now);
            match self.long_term(snapshot) {
                Ok(decisions) => {
                    self.current = decisions;
                    self.violation_secs.iter_mut().for_each(|v| *v = 0.0);
                }
                Err(_) => {
                    // Keep the previous allocation on solver failure —
                    // an autoscaler must not crash the control loop.
                }
            }
        } else if self.config.use_hybrid {
            self.reactive(snapshot, dt);
        }

        let mut out = self.current.clone();
        enforce_quota(&mut out, snapshot.replica_quota());
        self.current = out.clone();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::FlatPredictor;
    use crate::types::{JobObservation, JobSpec, ResourceModel};

    fn obs(rate_per_min: f64, target: u32, tail: f64) -> JobObservation {
        JobObservation {
            spec: JobSpec::resnet34("job"),
            target_replicas: target,
            ready_replicas: target,
            queue_len: 0,
            arrival_rate_history: vec![rate_per_min; 15],
            recent_arrival_rate: rate_per_min / 60.0,
            mean_processing_time: 0.180,
            recent_tail_latency: tail,
            drop_rate: 0.0,
        }
    }

    fn snapshot(now: f64, quota: u32, jobs: Vec<JobObservation>) -> ClusterSnapshot {
        ClusterSnapshot {
            now,
            resources: ResourceModel::replicas(quota),
            jobs,
        }
    }

    fn faro(objective: ClusterObjective, n_jobs: usize) -> FaroAutoscaler {
        let predictors: Vec<Box<dyn RatePredictor>> = (0..n_jobs)
            .map(|_| {
                Box::new(FlatPredictor {
                    lookback: 3,
                    sigma_fraction: 0.1,
                }) as Box<dyn RatePredictor>
            })
            .collect();
        let mut cfg = FaroConfig::new(objective);
        cfg.samples = 8;
        FaroAutoscaler::new(cfg, predictors)
    }

    #[test]
    fn allocates_more_to_heavier_job() {
        let mut f = faro(ClusterObjective::Sum, 2);
        let snap = snapshot(0.0, 32, vec![obs(2400.0, 1, 0.1), obs(300.0, 1, 0.1)]);
        let ds = f.decide(&snap);
        assert_eq!(ds.len(), 2);
        assert!(ds[0].target_replicas > ds[1].target_replicas, "{ds:?}");
        assert!(ds.iter().map(|d| d.target_replicas).sum::<u32>() <= 32);
        // 2400/min = 40/s at 180 ms needs ~8+ replicas.
        assert!(ds[0].target_replicas >= 8, "{ds:?}");
    }

    #[test]
    fn long_term_cadence_respected() {
        let mut f = faro(ClusterObjective::Sum, 1);
        let d0 = f.decide(&snapshot(0.0, 16, vec![obs(1200.0, 1, 0.1)]));
        // 10 s later with a huge rate change: long-term must NOT rerun.
        let d1 = f.decide(&snapshot(
            10.0,
            16,
            vec![obs(6000.0, d0[0].target_replicas, 0.1)],
        ));
        assert_eq!(d0[0].target_replicas, d1[0].target_replicas);
        // 300 s later it must rerun and scale up.
        let d2 = f.decide(&snapshot(
            300.0,
            16,
            vec![obs(6000.0, d1[0].target_replicas, 0.1)],
        ));
        assert!(d2[0].target_replicas > d1[0].target_replicas, "{d2:?}");
    }

    #[test]
    fn reactive_upscales_after_sustained_violation() {
        let mut f = faro(ClusterObjective::Sum, 1);
        let d0 = f.decide(&snapshot(0.0, 16, vec![obs(600.0, 1, 0.1)]));
        let base = d0[0].target_replicas;
        // Three 10 s ticks of violation -> 30 s sustained -> +1.
        let mut last = base;
        for (i, t) in [10.0, 20.0, 30.0].iter().enumerate() {
            let d = f.decide(&snapshot(*t, 16, vec![obs(600.0, last, 5.0)]));
            last = d[0].target_replicas;
            if i < 2 {
                assert_eq!(last, base, "no upscale before the threshold");
            }
        }
        assert_eq!(last, base + 1, "one additive upscale after 30 s");
    }

    #[test]
    fn reactive_never_downscales() {
        let mut f = faro(ClusterObjective::Sum, 1);
        let d0 = f.decide(&snapshot(0.0, 16, vec![obs(1200.0, 1, 0.1)]));
        let base = d0[0].target_replicas;
        // Healthy latency for many short ticks: replicas must not drop.
        for t in [10.0, 20.0, 30.0, 40.0] {
            let d = f.decide(&snapshot(t, 16, vec![obs(10.0, base, 0.05)]));
            assert!(d[0].target_replicas >= base);
        }
    }

    #[test]
    fn hybrid_ablation_disables_reactive() {
        let predictors: Vec<Box<dyn RatePredictor>> = vec![Box::new(FlatPredictor::default())];
        let mut cfg = FaroConfig::new(ClusterObjective::Sum);
        cfg.use_hybrid = false;
        cfg.samples = 4;
        let mut f = FaroAutoscaler::new(cfg, predictors);
        let d0 = f.decide(&snapshot(0.0, 16, vec![obs(600.0, 1, 0.1)]));
        let base = d0[0].target_replicas;
        for t in [10.0, 20.0, 30.0, 40.0, 50.0] {
            let d = f.decide(&snapshot(t, 16, vec![obs(600.0, base, 9.0)]));
            assert_eq!(d[0].target_replicas, base, "reactive disabled");
        }
    }

    #[test]
    fn quota_respected_with_many_needy_jobs() {
        let mut f = faro(ClusterObjective::FairSum { gamma: 4.0 }, 4);
        let jobs = (0..4).map(|_| obs(3000.0, 1, 0.1)).collect();
        let ds = f.decide(&snapshot(0.0, 12, jobs));
        assert!(ds.iter().map(|d| d.target_replicas).sum::<u32>() <= 12);
        assert!(ds.iter().all(|d| d.target_replicas >= 1));
    }

    #[test]
    fn hierarchical_path_used_for_many_jobs() {
        let n = 12;
        let predictors: Vec<Box<dyn RatePredictor>> = (0..n)
            .map(|_| Box::new(FlatPredictor::default()) as Box<dyn RatePredictor>)
            .collect();
        let mut cfg = FaroConfig::new(ClusterObjective::Sum);
        cfg.hierarchical_threshold = 8; // Force the grouped path.
        cfg.groups = 3;
        cfg.samples = 2;
        let mut f = FaroAutoscaler::new(cfg, predictors);
        let jobs = (0..n)
            .map(|i| obs(600.0 + 100.0 * i as f64, 1, 0.1))
            .collect();
        let ds = f.decide(&snapshot(0.0, 60, jobs));
        assert_eq!(ds.len(), n);
        assert!(ds.iter().map(|d| d.target_replicas).sum::<u32>() <= 60);
    }
}
