//! Hierarchical optimization for large job counts (paper Sec. 3.4).
//!
//! With many jobs the optimization variable count grows linearly and
//! solve time super-linearly. Faro assigns jobs to `G` random groups,
//! aggregates each group's arrival rate (sum) and processing time
//! (mean), solves the `G`-variable problem, then splits each group's
//! replica budget among its members proportionally to their offered
//! load. The paper reports a 64x speedup at ~2% utility change with a
//! handful of groups, and uses `G = 10` by default.

use crate::error::Result;
use crate::objective::ClusterObjective;
use crate::opt::{Fidelity, JobWorkload, MultiTenantProblem};
use crate::rng::SplitMix64;
use crate::types::{DesiredState, JobDecision, JobId, ResourceModel};
use crate::units::ReplicaCount;
use faro_solver::Solver;

/// Default group count (paper Sec. 3.4).
pub const DEFAULT_GROUPS: usize = 10;

/// Assigns `n_jobs` jobs to `groups` random groups (each non-empty when
/// `n_jobs >= groups`), deterministically from `seed` via the workspace
/// [`SplitMix64`] stream — the assignment reproduces bit-for-bit across
/// platforms and never shifts under a `rand` version bump.
pub fn assign_groups(n_jobs: usize, groups: usize, seed: u64) -> Vec<usize> {
    let g = groups.max(1).min(n_jobs.max(1));
    let mut rng = SplitMix64::new(seed ^ 0x6e0a_9ed5);
    // Round-robin over a shuffled job order guarantees non-empty groups.
    let mut order: Vec<usize> = (0..n_jobs).collect();
    rng.shuffle(&mut order);
    let mut assignment = vec![0usize; n_jobs];
    for (pos, &job) in order.iter().enumerate() {
        assignment[job] = pos % g;
    }
    assignment
}

/// Estimated M/D/c replica *need* of one job at its mean predicted
/// rate: the replica count that meets the SLO, or an offered-load floor
/// when even the quota cannot. Shared by the within-group share split
/// here and the shard partitioner in [`crate::sharded`].
pub(crate) fn replica_need(job: &JobWorkload, quota: ReplicaCount) -> f64 {
    let total: f64 = job.lambda_trajectories.iter().flat_map(|t| t.iter()).sum();
    let count = job
        .lambda_trajectories
        .iter()
        .map(Vec::len)
        .sum::<usize>()
        .max(1);
    let mean_lambda = total / count as f64;
    faro_queueing::mdc::replicas_for_slo(
        job.slo.percentile,
        job.processing_time,
        mean_lambda,
        job.slo.latency,
        quota.max(ReplicaCount::ONE),
    )
    .map(|r| r.as_f64())
    .unwrap_or_else(|_| (mean_lambda * job.processing_time).max(1.0) + 1.0)
}

/// Result of a hierarchical solve.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalAllocation {
    /// Integer replica counts per job.
    pub replicas: Vec<u32>,
    /// Drop rates per job.
    pub drop_rates: Vec<f64>,
    /// Group-level continuous objective value.
    pub group_objective: f64,
    /// Solver function evaluations spent on the grouped solve.
    pub evals: usize,
}

impl HierarchicalAllocation {
    /// The allocation as a typed [`DesiredState`] — the boundary where
    /// solver-space positional vectors become [`JobId`]-keyed decisions
    /// that can never be applied to the wrong job.
    pub fn desired_state(&self) -> DesiredState {
        self.replicas
            .iter()
            .zip(self.drop_rates.iter())
            .enumerate()
            .map(|(j, (&r, &d))| (JobId::new(j), JobDecision::replicas(r).with_drop_rate(d)))
            .collect()
    }
}

/// A `G`-variable view of the flat problem: each group's replica budget
/// is one decision variable, split among members proportionally to
/// their offered load, and per-job utilities are evaluated exactly.
/// The solver probes `G` coordinates per iteration instead of `n`,
/// which is where the paper's up-to-64x speedup comes from.
struct GroupedProblem<'a> {
    flat: &'a MultiTenantProblem,
    member_lists: &'a [Vec<usize>],
    /// Per-job share of its group budget (sums to 1 within a group).
    shares: &'a [f64],
    uses_drops: bool,
}

impl GroupedProblem<'_> {
    /// Expands group variables into per-job `(replicas, drops)`.
    fn expand(&self, v: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let g = self.member_lists.len();
        let n = self.shares.len();
        let mut xs = vec![1.0; n];
        let mut ds = vec![0.0; n];
        for (grp, members) in self.member_lists.iter().enumerate() {
            let budget = v[grp].max(members.len() as f64);
            for &i in members {
                xs[i] = (budget * self.shares[i]).max(1.0);
                if self.uses_drops {
                    ds[i] = v[g + grp].clamp(0.0, 1.0);
                }
            }
        }
        (xs, ds)
    }
}

impl faro_solver::Problem for GroupedProblem<'_> {
    fn dim(&self) -> usize {
        let g = self.member_lists.len();
        if self.uses_drops {
            2 * g
        } else {
            g
        }
    }

    fn objective(&self, v: &[f64]) -> f64 {
        let (xs, ds) = self.expand(v);
        -self.flat.cluster_value(&xs, &ds)
    }

    fn num_constraints(&self) -> usize {
        2
    }

    fn constraints(&self, v: &[f64], out: &mut [f64]) {
        let (xs, _) = self.expand(v);
        let r = self.flat.resources();
        let cpu: f64 = xs.iter().map(|&x| x * r.cpu_per_replica).sum();
        let mem: f64 = xs.iter().map(|&x| x * r.mem_per_replica).sum();
        out[0] = r.cluster_cpu - cpu;
        out[1] = r.cluster_mem - mem;
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        let g = self.member_lists.len();
        let quota = self.flat.resources().replica_quota().as_f64();
        let mut b: Vec<(f64, f64)> = self
            .member_lists
            .iter()
            .map(|m| (m.len() as f64, quota))
            .collect();
        if self.uses_drops {
            b.extend(std::iter::repeat_n((0.0, 1.0), g));
        }
        b
    }
}

/// Solves the multi-tenant problem hierarchically with `groups` groups.
///
/// # Errors
///
/// Propagates problem-construction and solver failures.
#[allow(clippy::too_many_arguments)]
pub fn solve_hierarchical(
    jobs: &[JobWorkload],
    resources: ResourceModel,
    objective: ClusterObjective,
    fidelity: Fidelity,
    solver: &dyn Solver,
    current: &[u32],
    groups: usize,
    seed: u64,
) -> Result<HierarchicalAllocation> {
    let n = jobs.len();
    let assignment = assign_groups(n, groups, seed);
    let g = assignment.iter().copied().max().map_or(1, |m| m + 1);
    let mut member_lists: Vec<Vec<usize>> = vec![Vec::new(); g];
    for (job, &grp) in assignment.iter().enumerate() {
        member_lists[grp].push(job);
    }

    // Per-job within-group shares, proportional to each member's
    // estimated M/D/c replica *need* at its mean predicted rate. Raw
    // offered load would starve small jobs (queueing headroom is not
    // linear in load), forcing the group budget far past the true need.
    let quota = resources.replica_quota().max(ReplicaCount::ONE);
    let need = |j: &JobWorkload| -> f64 { replica_need(j, quota) };
    let mut shares = vec![0.0; n];
    for members in &member_lists {
        let total: f64 = members.iter().map(|&i| need(&jobs[i])).sum();
        for &i in members {
            shares[i] = need(&jobs[i]) / total.max(1e-9);
        }
    }

    let flat = MultiTenantProblem::new(jobs.to_vec(), resources, objective, fidelity)?;
    let grouped = GroupedProblem {
        flat: &flat,
        member_lists: &member_lists,
        shares: &shares,
        uses_drops: objective.uses_drop_rates(),
    };
    // Initial point: each group starts from its members' current total.
    let mut v0: Vec<f64> = member_lists
        .iter()
        .map(|m| {
            m.iter()
                .map(|&i| f64::from(current.get(i).copied().unwrap_or(1)))
                .sum()
        })
        .collect();
    if objective.uses_drop_rates() {
        v0.extend(std::iter::repeat_n(0.0, g));
    }
    let sol = solver.solve(&grouped, &v0)?;
    let (xs, ds) = grouped.expand(&sol.x);

    // Reuse the flat problem's integerization so the final allocation
    // is quota-exact and greedily optimal at the margin.
    let alloc = crate::opt::ContinuousAllocation {
        replicas: xs,
        drop_rates: ds,
        objective_value: -sol.objective,
        evals: sol.evals,
    };
    let replicas = flat.integerize(&alloc);
    Ok(HierarchicalAllocation {
        replicas,
        drop_rates: alloc.drop_rates,
        group_objective: -sol.objective,
        evals: sol.evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Slo;
    use faro_solver::Cobyla;

    fn job(lambda: f64) -> JobWorkload {
        JobWorkload::constant(lambda, 0.180, Slo::paper_default(), 1.0)
    }

    #[test]
    fn assignment_covers_all_groups() {
        let a = assign_groups(20, 5, 1);
        assert_eq!(a.len(), 20);
        for g in 0..5 {
            assert!(a.contains(&g), "group {g} empty");
        }
        // Deterministic.
        assert_eq!(a, assign_groups(20, 5, 1));
        assert_ne!(a, assign_groups(20, 5, 2));
    }

    #[test]
    fn more_groups_than_jobs_clamped() {
        let a = assign_groups(3, 10, 0);
        assert!(a.iter().all(|&g| g < 3));
    }

    #[test]
    fn grouped_solution_close_to_flat() {
        // With generous quota, the grouped solve should reach nearly
        // the flat solve's objective (paper: ~2% difference).
        let jobs: Vec<JobWorkload> = (0..12).map(|i| job(4.0 + f64::from(i) * 2.0)).collect();
        let resources = ResourceModel::replicas(ReplicaCount::new(60));
        let flat = MultiTenantProblem::new(
            jobs.clone(),
            resources.clone(),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap();
        let flat_alloc = flat.solve(&Cobyla::fast(), &[1; 12]).unwrap();
        let flat_xs = flat.integerize(&flat_alloc);
        let flat_obj = flat.cluster_value_integer(&flat_xs, &flat_alloc.drop_rates);
        let grouped = solve_hierarchical(
            &jobs,
            resources.clone(),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
            &Cobyla::fast(),
            &[1; 12],
            4,
            7,
        )
        .unwrap();
        let grouped_obj = flat.cluster_value_integer(&grouped.replicas, &grouped.drop_rates);
        assert!(
            grouped_obj > 0.9 * flat_obj,
            "grouped {grouped_obj} vs flat {flat_obj}"
        );
    }

    #[test]
    fn hierarchical_respects_quota_and_minimums() {
        let jobs: Vec<JobWorkload> = (0..12).map(|i| job(5.0 + f64::from(i) * 3.0)).collect();
        let current = vec![1u32; 12];
        let out = solve_hierarchical(
            &jobs,
            ResourceModel::replicas(ReplicaCount::new(48)),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
            &Cobyla::fast(),
            &current,
            4,
            7,
        )
        .unwrap();
        assert_eq!(out.replicas.len(), 12);
        assert!(out.replicas.iter().all(|&x| x >= 1));
        assert!(out.replicas.iter().sum::<u32>() <= 48, "{:?}", out.replicas);
    }

    #[test]
    fn desired_state_preserves_job_identity() {
        let alloc = HierarchicalAllocation {
            replicas: vec![3, 1, 5],
            drop_rates: vec![0.0, 0.2, 0.0],
            group_objective: 1.0,
            evals: 10,
        };
        let ds = alloc.desired_state();
        assert_eq!(ds.len(), 3);
        let d1 = ds.get(JobId::new(1)).unwrap();
        assert_eq!(d1.target_replicas, 1);
        assert!((d1.drop_rate - 0.2).abs() < 1e-12);
        assert_eq!(ds.total_replicas(), 9);
    }

    #[test]
    fn heavier_jobs_get_more_within_group() {
        // One group: split is purely proportional.
        let jobs = vec![job(5.0), job(50.0)];
        let out = solve_hierarchical(
            &jobs,
            ResourceModel::replicas(ReplicaCount::new(24)),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
            &Cobyla::fast(),
            &[1, 1],
            1,
            3,
        )
        .unwrap();
        assert!(out.replicas[1] > out.replicas[0], "{:?}", out.replicas);
    }

    #[test]
    fn group_solve_dimension_shrinks() {
        // Indirect speed check: group problem has G variables, so
        // evaluations should be far fewer than the flat problem's.
        let jobs: Vec<JobWorkload> = (0..30).map(|i| job(3.0 + f64::from(i))).collect();
        let flat = MultiTenantProblem::new(
            jobs.clone(),
            ResourceModel::replicas(ReplicaCount::new(120)),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap();
        let flat_alloc = flat.solve(&Cobyla::fast(), &[1; 30]).unwrap();
        let grouped = solve_hierarchical(
            &jobs,
            ResourceModel::replicas(ReplicaCount::new(120)),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
            &Cobyla::fast(),
            &[1; 30],
            5,
            1,
        );
        assert!(grouped.is_ok());
        assert!(flat_alloc.evals > 0);
    }
}
