//! Shared vocabulary types: jobs, SLOs, resources, snapshots, and scale
//! decisions.
//!
//! # Replica classes
//!
//! A cluster may serve from more than one kind of hardware (GPU pods,
//! CPU pods, ...). Each kind is a [`ReplicaClass`]: a service-time
//! multiplier, a cold-start delay, and a multi-dimensional quota cost.
//! When [`ResourceModel::classes`] is empty the cluster is the paper's
//! homogeneous one and every wire format, decision, and solve path is
//! byte-identical to the single-class original; the `(class, count)`
//! machinery ([`ClassAlloc`], vector quotas, per-class actuation) only
//! engages when a class table is configured.

use crate::units::{DurationMs, RatePerMin, ReplicaCount, SimTimeMs};
use serde::{Deserialize, Serialize};
use std::collections::btree_map;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Capacity of the fixed-size per-class allocation vector. Four covers
/// realistic on-prem mixes (e.g. A100 / T4 / CPU-AVX / CPU) without
/// heap-allocating every [`JobDecision`].
pub const MAX_CLASSES: usize = 4;

/// Number of resource dimensions in the vector quota (vCPU, GPU,
/// memory).
pub const RESOURCE_DIMS: usize = 3;

/// Typed identifier of a job (one pre-trained model receiving queries).
///
/// Wraps the job's position in the cluster's job list so a decision can
/// never be applied to the wrong job through positional off-by-one:
/// every control-plane API keys on `JobId`, not slice order. Reports
/// key jobs by name; the only wire format that carries a `JobId` is
/// the v1 actuation schema, where [`DesiredState`] entries serialize
/// it as the raw `"job"` index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(usize);

impl JobId {
    /// Wraps a raw job index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw index, for slicing into per-job storage.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A latency service-level objective: a target and a percentile
/// (paper Sec. 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// Latency target in seconds (e.g. 0.720).
    pub latency: f64,
    /// Percentile in `(0, 1)` (e.g. 0.99 for the 99th percentile).
    pub percentile: f64,
}

impl Slo {
    /// The paper's default evaluation SLO: 720 ms at the 99th percentile
    /// (4x the ResNet34 processing time of 180 ms).
    pub fn paper_default() -> Self {
        Self {
            latency: 0.720,
            percentile: 0.99,
        }
    }

    /// Parses an SLO from its wire format (`{"latency":..,
    /// "percentile":..}`). Returns `None` on a shape mismatch.
    pub fn from_json(v: &serde_json::Value) -> Option<Self> {
        Some(Self {
            latency: v.get("latency")?.as_f64()?,
            percentile: v.get("percentile")?.as_f64()?,
        })
    }
}

/// Static description of one inference job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Human-readable name (e.g. "resnet34-azure-3").
    pub name: String,
    /// The job's SLO.
    pub slo: Slo,
    /// Priority coefficient `pi` in cluster objectives (default 1).
    pub priority: f64,
    /// Nominal per-request processing time in seconds (e.g. 0.180 for
    /// ResNet34 on CPU). Used as the initial estimate before
    /// measurements arrive.
    pub processing_time: f64,
    /// Names of [`ReplicaClass`]es this job may run on; empty (the
    /// default) means any class. Lets operators pin e.g. a
    /// quantization-sensitive model to GPU classes only.
    pub class_affinity: Vec<String>,
}

impl serde::Serialize for JobSpec {
    /// Hand-written so specs without a class affinity (every
    /// single-class workload) keep the pre-class wire format.
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        self.name.serialize_json(out);
        out.push_str(",\"slo\":");
        self.slo.serialize_json(out);
        out.push_str(",\"priority\":");
        self.priority.serialize_json(out);
        out.push_str(",\"processing_time\":");
        self.processing_time.serialize_json(out);
        if !self.class_affinity.is_empty() {
            out.push_str(",\"class_affinity\":");
            self.class_affinity.serialize_json(out);
        }
        out.push('}');
    }
}

impl Deserialize for JobSpec {}

impl JobSpec {
    /// A ResNet34-shaped job with the paper's default SLO.
    pub fn resnet34(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            slo: Slo::paper_default(),
            priority: 1.0,
            processing_time: 0.180,
            class_affinity: Vec::new(),
        }
    }

    /// A ResNet18-shaped job: 100 ms processing, 400 ms SLO (paper
    /// Sec. 6.3).
    pub fn resnet18(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            slo: Slo {
                latency: 0.400,
                percentile: 0.99,
            },
            priority: 1.0,
            processing_time: 0.100,
            class_affinity: Vec::new(),
        }
    }

    /// Whether this job may run on the class named `class_name`.
    pub fn allows_class(&self, class_name: &str) -> bool {
        self.class_affinity.is_empty() || self.class_affinity.iter().any(|c| c == class_name)
    }

    /// Parses a spec from its wire format. `class_affinity` is
    /// optional, so pre-class JSON (every committed trace) parses to a
    /// run-anywhere spec. Returns `None` on a shape mismatch.
    pub fn from_json(v: &serde_json::Value) -> Option<Self> {
        let class_affinity = match v.get("class_affinity") {
            None => Vec::new(),
            Some(arr) => arr
                .as_array()?
                .iter()
                .map(|c| c.as_str().map(String::from))
                .collect::<Option<Vec<_>>>()?,
        };
        Some(Self {
            name: v.get("name")?.as_str()?.to_string(),
            slo: Slo::from_json(v.get("slo")?)?,
            priority: v.get("priority")?.as_f64()?,
            processing_time: v.get("processing_time")?.as_f64()?,
            class_affinity,
        })
    }
}

/// One kind of serving hardware a replica can run on.
///
/// `speed` is a service-time *multiplier* relative to the job's nominal
/// processing time: a class with `speed = 3.0` serves each request three
/// times slower than the reference hardware (class 0 by convention,
/// typically the GPU class at `speed = 1.0`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReplicaClass {
    /// Human-readable name (e.g. "gpu-a100", "cpu-avx").
    pub name: String,
    /// Service-time multiplier applied to every job's processing time
    /// when served from this class (1.0 = reference speed).
    pub speed: f64,
    /// Cold-start delay for a replica of this class.
    pub cold_start: DurationMs,
    /// vCPU consumed per replica of this class.
    pub cpu: f64,
    /// GPUs consumed per replica of this class.
    pub gpu: f64,
    /// Memory (GB) consumed per replica of this class.
    pub mem: f64,
}

impl Deserialize for ReplicaClass {}

impl ReplicaClass {
    /// A reference-speed GPU class: 1 GPU + 1 vCPU + 4 GB, 60 s cold
    /// start (model load + CUDA warm-up).
    pub fn gpu(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            speed: 1.0,
            cold_start: DurationMs::from_secs(60.0),
            cpu: 1.0,
            gpu: 1.0,
            mem: 4.0,
        }
    }

    /// A CPU-only class, `slowdown` times slower than the reference
    /// class: 1 vCPU + 1 GB, 30 s cold start (no device init).
    pub fn cpu(name: impl Into<String>, slowdown: f64) -> Self {
        Self {
            name: name.into(),
            speed: slowdown,
            cold_start: DurationMs::from_secs(30.0),
            cpu: 1.0,
            gpu: 0.0,
            mem: 1.0,
        }
    }

    /// The quota cost of one replica of this class, by resource
    /// dimension `[vCPU, GPU, memory]`.
    pub fn cost(&self) -> [f64; RESOURCE_DIMS] {
        [self.cpu, self.gpu, self.mem]
    }

    /// Parses a class from its wire format (`cold_start` is `f64`
    /// seconds, matching [`DurationMs`]'s serialization). Returns
    /// `None` on a shape mismatch.
    pub fn from_json(v: &serde_json::Value) -> Option<Self> {
        Some(Self {
            name: v.get("name")?.as_str()?.to_string(),
            speed: v.get("speed")?.as_f64()?,
            cold_start: DurationMs::from_secs(v.get("cold_start")?.as_f64()?),
            cpu: v.get("cpu")?.as_f64()?,
            gpu: v.get("gpu")?.as_f64()?,
            mem: v.get("mem")?.as_f64()?,
        })
    }
}

/// A per-class replica allocation: `counts[c]` replicas of class `c`.
///
/// Fixed capacity ([`MAX_CLASSES`]) so decisions stay `Copy` and the
/// solver's hot path never heap-allocates. `len` tracks the cluster's
/// configured class count; indices at or beyond it are always zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassAlloc {
    counts: [u32; MAX_CLASSES],
    len: u8,
}

impl serde::Serialize for ClassAlloc {
    /// Writes a plain JSON array of the per-class counts.
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl Deserialize for ClassAlloc {}

impl ClassAlloc {
    /// An all-zero allocation over `n_classes` classes (capped at
    /// [`MAX_CLASSES`]).
    pub fn zero(n_classes: usize) -> Self {
        Self {
            counts: [0; MAX_CLASSES],
            len: n_classes.min(MAX_CLASSES) as u8,
        }
    }

    /// An allocation from explicit per-class counts. Returns `None`
    /// when more than [`MAX_CLASSES`] counts are given.
    pub fn from_counts(counts: &[u32]) -> Option<Self> {
        if counts.len() > MAX_CLASSES {
            return None;
        }
        let mut alloc = Self::zero(counts.len());
        alloc.counts[..counts.len()].copy_from_slice(counts);
        Some(alloc)
    }

    /// `count` replicas of a single class in a `n_classes`-class table.
    pub fn single(class: usize, count: u32, n_classes: usize) -> Self {
        let mut alloc = Self::zero(n_classes);
        alloc.set(class, count);
        alloc
    }

    /// Number of classes this allocation spans.
    pub fn n_classes(&self) -> usize {
        self.len as usize
    }

    /// Replicas of class `class` (zero when out of range).
    pub fn count(&self, class: usize) -> u32 {
        if class < self.len as usize {
            self.counts[class]
        } else {
            0
        }
    }

    /// Sets the replica count of one class (ignored when out of range).
    pub fn set(&mut self, class: usize, count: u32) {
        if class < self.len as usize {
            self.counts[class] = count;
        }
    }

    /// Adds `delta` replicas of one class, saturating at zero.
    pub fn add(&mut self, class: usize, delta: i64) {
        if class < self.len as usize {
            let next = i64::from(self.counts[class]) + delta;
            self.counts[class] = next.clamp(0, i64::from(u32::MAX)) as u32;
        }
    }

    /// Total replicas across all classes.
    pub fn total(&self) -> u32 {
        self.as_slice().iter().sum()
    }

    /// The per-class counts as a slice of length [`Self::n_classes`].
    pub fn as_slice(&self) -> &[u32] {
        &self.counts[..self.len as usize]
    }

    /// Parses an allocation from its wire format (a plain count
    /// array). Returns `None` on a shape mismatch or more than
    /// [`MAX_CLASSES`] entries.
    pub fn from_json(v: &serde_json::Value) -> Option<Self> {
        let counts = v
            .as_array()?
            .iter()
            .map(|n| n.as_u64().and_then(|n| u32::try_from(n).ok()))
            .collect::<Option<Vec<_>>>()?;
        Self::from_counts(&counts)
    }
}

impl fmt::Display for ClassAlloc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (c, n) in self.as_slice().iter().enumerate() {
            if c > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

/// Per-replica resource demand and cluster capacity.
///
/// Two regimes share this type:
///
/// * **Homogeneous** (paper Sec. 6: 1 vCPU + 1 GB per Ray Serve
///   replica): `classes` is empty and the scalar
///   `cpu_per_replica`/`mem_per_replica` fields describe every replica.
///   This is the default everywhere and serializes byte-identically to
///   the pre-class wire format.
/// * **Heterogeneous**: `classes` lists the available hardware kinds
///   and capacity is the vector `[cluster_cpu, cluster_gpu,
///   cluster_mem]`; the scalar per-replica fields are ignored.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceModel {
    /// vCPU per replica (homogeneous regime).
    pub cpu_per_replica: f64,
    /// Memory (GB) per replica (homogeneous regime).
    pub mem_per_replica: f64,
    /// Total vCPU available for replicas.
    pub cluster_cpu: f64,
    /// Total memory (GB) available for replicas.
    pub cluster_mem: f64,
    /// Total GPUs available for replicas (heterogeneous regime; zero
    /// and unserialized in the homogeneous one).
    pub cluster_gpu: f64,
    /// Replica class table; empty means homogeneous.
    pub classes: Vec<ReplicaClass>,
}

impl serde::Serialize for ResourceModel {
    /// Hand-written so the homogeneous wire format stays byte-identical
    /// to the pre-class derive: the GPU/class fields are emitted only
    /// when a class table is configured.
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"cpu_per_replica\":");
        self.cpu_per_replica.serialize_json(out);
        out.push_str(",\"mem_per_replica\":");
        self.mem_per_replica.serialize_json(out);
        out.push_str(",\"cluster_cpu\":");
        self.cluster_cpu.serialize_json(out);
        out.push_str(",\"cluster_mem\":");
        self.cluster_mem.serialize_json(out);
        if self.has_classes() {
            out.push_str(",\"cluster_gpu\":");
            self.cluster_gpu.serialize_json(out);
            out.push_str(",\"classes\":");
            self.classes.serialize_json(out);
        }
        out.push('}');
    }
}

impl Deserialize for ResourceModel {}

impl ResourceModel {
    /// A cluster sized in whole replicas (the paper's framing: "total
    /// replicas" via Kubernetes resource quota).
    pub fn replicas(total: ReplicaCount) -> Self {
        Self {
            cpu_per_replica: 1.0,
            mem_per_replica: 1.0,
            cluster_cpu: total.as_f64(),
            cluster_mem: total.as_f64(),
            cluster_gpu: 0.0,
            classes: Vec::new(),
        }
    }

    /// A heterogeneous cluster with the given class table and capacity
    /// vector. The scalar per-replica fields are set to the class-0
    /// costs so legacy consumers that ignore classes see something
    /// sensible rather than garbage.
    pub fn heterogeneous(
        classes: Vec<ReplicaClass>,
        cluster_cpu: f64,
        cluster_gpu: f64,
        cluster_mem: f64,
    ) -> Self {
        let (cpu0, mem0) = classes
            .first()
            .map(|c| (c.cpu, c.mem))
            .unwrap_or((1.0, 1.0));
        Self {
            cpu_per_replica: cpu0,
            mem_per_replica: mem0,
            cluster_cpu,
            cluster_mem,
            cluster_gpu,
            classes,
        }
    }

    /// Whether a replica class table is configured (heterogeneous
    /// regime).
    pub fn has_classes(&self) -> bool {
        !self.classes.is_empty()
    }

    /// Number of replica classes (zero in the homogeneous regime).
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The capacity vector `[vCPU, GPU, memory]`.
    pub fn capacities(&self) -> [f64; RESOURCE_DIMS] {
        [self.cluster_cpu, self.cluster_gpu, self.cluster_mem]
    }

    /// The resource usage vector of one per-class allocation.
    pub fn usage_of(&self, alloc: &ClassAlloc) -> [f64; RESOURCE_DIMS] {
        let mut usage = [0.0; RESOURCE_DIMS];
        for (c, class) in self.classes.iter().enumerate() {
            let n = f64::from(alloc.count(c));
            let cost = class.cost();
            for (u, k) in usage.iter_mut().zip(cost) {
                *u += n * k;
            }
        }
        usage
    }

    /// Whether `usage` fits inside the capacity vector (with a small
    /// relative tolerance for float accumulation).
    pub fn fits(&self, usage: &[f64; RESOURCE_DIMS]) -> bool {
        usage
            .iter()
            .zip(self.capacities())
            .all(|(&u, cap)| u <= cap * (1.0 + 1e-9) + 1e-9)
    }

    /// Maximum replicas of one class alone, over every resource
    /// dimension that class consumes.
    pub fn class_quota(&self, class: usize) -> ReplicaCount {
        let Some(c) = self.classes.get(class) else {
            return ReplicaCount::new(0);
        };
        let mut quota = f64::INFINITY;
        for (cost, cap) in c.cost().into_iter().zip(self.capacities()) {
            if cost > 0.0 {
                quota = quota.min(cap / cost);
            }
        }
        if quota.is_finite() {
            ReplicaCount::new(quota.floor().max(0.0) as u32)
        } else {
            ReplicaCount::new(0)
        }
    }

    /// Assigns a *class-blind* replica target to classes by spill-fill:
    /// fill the fastest class (lowest service-time multiplier, ties by
    /// lower index) as far as the remaining vector capacity allows,
    /// then spill the rest into the next-fastest class, and so on.
    ///
    /// `used` is the capacity already committed (by classed decisions
    /// or earlier spill-fills) and is advanced in place so successive
    /// calls share one budget. Replicas that fit nowhere are parked on
    /// the slowest class — admission ([`fits`](Self::fits)) is the
    /// ground truth that trims them later, exactly as a scalar
    /// over-quota target is trimmed.
    ///
    /// This is the documented class-assignment rule for class-blind
    /// baselines on heterogeneous clusters: they pick a *count* and the
    /// platform places it greedily, so they consume scarce fast
    /// capacity first regardless of each job's SLO slack.
    pub fn spill_fill(&self, target: u32, used: &mut [f64; RESOURCE_DIMS]) -> ClassAlloc {
        let nc = self.n_classes();
        let mut alloc = ClassAlloc::zero(nc);
        if nc == 0 {
            return alloc;
        }
        let mut order: Vec<usize> = (0..nc).collect();
        order.sort_by(|&a, &b| {
            self.classes[a]
                .speed
                .partial_cmp(&self.classes[b].speed)
                .unwrap_or(core::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let caps = self.capacities();
        let mut remaining = target;
        for &c in &order {
            if remaining == 0 {
                break;
            }
            let cost = self.classes[c].cost();
            let mut headroom = f64::INFINITY;
            for ((&u, cap), k) in used.iter().zip(caps).zip(cost) {
                if k > 0.0 {
                    headroom = headroom.min((cap - u) / k);
                }
            }
            let take = if headroom.is_finite() {
                (headroom.floor().max(0.0) as u32).min(remaining)
            } else {
                remaining
            };
            if take > 0 {
                alloc.add(c, i64::from(take));
                for (u, k) in used.iter_mut().zip(cost) {
                    *u += f64::from(take) * k;
                }
                remaining -= take;
            }
        }
        if remaining > 0 {
            // Park the overflow on the slowest class; admission trims it.
            let slowest = *order.last().unwrap_or(&0);
            alloc.add(slowest, i64::from(remaining));
            for (u, k) in used.iter_mut().zip(self.classes[slowest].cost()) {
                *u += f64::from(remaining) * k;
            }
        }
        alloc
    }

    /// The replica quota implied by the binding resource.
    ///
    /// Homogeneous regime: the quota is `floor(min_d cap_d / cost_d)` —
    /// the **binding** (scarcest) resource is identified on fractional
    /// replicas first and floored once. Since `floor` is monotone,
    /// this equals `min_d floor(cap_d / cost_d)`; with fractional
    /// per-replica costs (e.g. 0.5 vCPU/replica) the division happens
    /// before any rounding, so 10 vCPU at 0.5 vCPU/replica yields 20
    /// replicas, not 10.
    ///
    /// Heterogeneous regime: the sum of single-class quotas. Exact
    /// when class costs are dimension-disjoint (e.g. a GPU class
    /// binding on GPUs and a CPU class binding on vCPU); an upper
    /// bound otherwise — [`Self::fits`] remains the ground truth that
    /// admission enforces.
    pub fn replica_quota(&self) -> ReplicaCount {
        if self.has_classes() {
            return (0..self.n_classes()).map(|c| self.class_quota(c)).sum();
        }
        let by_cpu = self.cluster_cpu / self.cpu_per_replica;
        let by_mem = self.cluster_mem / self.mem_per_replica;
        ReplicaCount::new(by_cpu.min(by_mem).floor().max(0.0) as u32)
    }

    /// Parses a model from its wire format. `cluster_gpu` and
    /// `classes` are optional, so pre-class JSON parses to the
    /// homogeneous regime. Returns `None` on a shape mismatch.
    pub fn from_json(v: &serde_json::Value) -> Option<Self> {
        let classes = match v.get("classes") {
            None => Vec::new(),
            Some(arr) => arr
                .as_array()?
                .iter()
                .map(ReplicaClass::from_json)
                .collect::<Option<Vec<_>>>()?,
        };
        Some(Self {
            cpu_per_replica: v.get("cpu_per_replica")?.as_f64()?,
            mem_per_replica: v.get("mem_per_replica")?.as_f64()?,
            cluster_cpu: v.get("cluster_cpu")?.as_f64()?,
            cluster_mem: v.get("cluster_mem")?.as_f64()?,
            cluster_gpu: v.get("cluster_gpu").and_then(|g| g.as_f64()).unwrap_or(0.0),
            classes,
        })
    }
}

/// Per-job observation delivered to policies at every tick.
#[derive(Debug, Clone, PartialEq)]
pub struct JobObservation {
    /// The job's static spec, shared with the runtime (interned so a
    /// snapshot does not deep-copy the spec on every tick).
    pub spec: Arc<JobSpec>,
    /// Current autoscale target (replicas the job is entitled to).
    pub target_replicas: u32,
    /// Replicas actually serving (excludes cold-starting ones).
    pub ready_replicas: u32,
    /// Router queue length right now.
    pub queue_len: usize,
    /// Completed per-minute arrival counts, oldest first (the metric the
    /// Faro router exports continually). Shared copy-on-write with the
    /// runtime's history so building a snapshot is O(1) in the elapsed
    /// trace length; serializes as a plain JSON array of raw rates.
    pub arrival_rate_history: Arc<Vec<RatePerMin>>,
    /// Arrival rate over the last reactive interval (requests/second).
    pub recent_arrival_rate: f64,
    /// Measured mean per-request processing time (seconds); falls back
    /// to the spec value when no requests completed yet.
    pub mean_processing_time: f64,
    /// Tail latency at the job's SLO percentile over the last reactive
    /// interval (seconds; infinite when requests were dropped).
    pub recent_tail_latency: f64,
    /// Current explicit drop rate setting in `[0, 1]`.
    pub drop_rate: f64,
    /// Per-class breakdown of `target_replicas` (heterogeneous regime
    /// only; `None` on homogeneous clusters).
    pub class_target: Option<ClassAlloc>,
    /// Per-class breakdown of `ready_replicas` (heterogeneous regime
    /// only; `None` on homogeneous clusters).
    pub class_ready: Option<ClassAlloc>,
}

impl serde::Serialize for JobObservation {
    /// Hand-written so homogeneous observations keep the pre-class
    /// wire format: the per-class fields are emitted only when set.
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"spec\":");
        self.spec.serialize_json(out);
        out.push_str(",\"target_replicas\":");
        self.target_replicas.serialize_json(out);
        out.push_str(",\"ready_replicas\":");
        self.ready_replicas.serialize_json(out);
        out.push_str(",\"queue_len\":");
        self.queue_len.serialize_json(out);
        out.push_str(",\"arrival_rate_history\":");
        self.arrival_rate_history.serialize_json(out);
        out.push_str(",\"recent_arrival_rate\":");
        self.recent_arrival_rate.serialize_json(out);
        out.push_str(",\"mean_processing_time\":");
        self.mean_processing_time.serialize_json(out);
        out.push_str(",\"recent_tail_latency\":");
        self.recent_tail_latency.serialize_json(out);
        out.push_str(",\"drop_rate\":");
        self.drop_rate.serialize_json(out);
        if let Some(ct) = &self.class_target {
            out.push_str(",\"class_target\":");
            ct.serialize_json(out);
        }
        if let Some(cr) = &self.class_ready {
            out.push_str(",\"class_ready\":");
            cr.serialize_json(out);
        }
        out.push('}');
    }
}

impl Deserialize for JobObservation {}

impl JobObservation {
    /// Parses an observation from its wire format. The per-class
    /// fields are optional, so pre-class JSON parses to the
    /// homogeneous regime. Non-finite floats serialize as `null`
    /// (the vendored writer's encoding) and parse back as NaN — a
    /// corrupt sample stays corrupt across the wire, though an
    /// infinite tail degrades to NaN ("unknown"), which every
    /// consumer already treats as not-attained. Returns `None` on a
    /// shape mismatch.
    pub fn from_json(v: &serde_json::Value) -> Option<Self> {
        let history = v
            .get("arrival_rate_history")?
            .as_array()?
            .iter()
            .map(|r| match r {
                serde_json::Value::Null => Some(RatePerMin::NAN),
                _ => r.as_f64().map(RatePerMin::new),
            })
            .collect::<Option<Vec<_>>>()?;
        let float = |key: &str| -> Option<f64> {
            match v.get(key)? {
                serde_json::Value::Null => Some(f64::NAN),
                other => other.as_f64(),
            }
        };
        let class = |key: &str| -> Option<Option<ClassAlloc>> {
            match v.get(key) {
                None => Some(None),
                Some(a) => Some(Some(ClassAlloc::from_json(a)?)),
            }
        };
        Some(Self {
            spec: Arc::new(JobSpec::from_json(v.get("spec")?)?),
            target_replicas: u32::try_from(v.get("target_replicas")?.as_u64()?).ok()?,
            ready_replicas: u32::try_from(v.get("ready_replicas")?.as_u64()?).ok()?,
            queue_len: usize::try_from(v.get("queue_len")?.as_u64()?).ok()?,
            arrival_rate_history: Arc::new(history),
            recent_arrival_rate: float("recent_arrival_rate")?,
            mean_processing_time: float("mean_processing_time")?,
            recent_tail_latency: float("recent_tail_latency")?,
            drop_rate: float("drop_rate")?,
            class_target: class("class_target")?,
            class_ready: class("class_ready")?,
        })
    }
}

/// Cluster-wide observation delivered to policies at every tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Simulation/wall time (serialized as `f64` seconds).
    pub now: SimTimeMs,
    /// Resource capacity.
    pub resources: ResourceModel,
    /// Per-job observations, indexed by [`JobId`].
    pub jobs: Vec<JobObservation>,
}

impl ClusterSnapshot {
    /// Total replica quota.
    pub fn replica_quota(&self) -> ReplicaCount {
        self.resources.replica_quota()
    }

    /// Sum of current target replicas.
    pub fn total_target_replicas(&self) -> ReplicaCount {
        self.jobs
            .iter()
            .map(|j| ReplicaCount::new(j.target_replicas))
            .sum()
    }

    /// Identifiers of every job in the snapshot, in ascending order.
    pub fn job_ids(&self) -> impl Iterator<Item = JobId> + '_ {
        (0..self.jobs.len()).map(JobId::new)
    }

    /// The observation for one job, if present.
    pub fn job(&self, id: JobId) -> Option<&JobObservation> {
        self.jobs.get(id.index())
    }

    /// Parses a snapshot from its wire format (`now` is `f64`
    /// seconds, the format [`SimTimeMs`] serializes). Returns `None`
    /// on a shape mismatch.
    pub fn from_json(v: &serde_json::Value) -> Option<Self> {
        Some(Self {
            now: SimTimeMs::from_secs(v.get("now")?.as_f64()?),
            resources: ResourceModel::from_json(v.get("resources")?)?,
            jobs: v
                .get("jobs")?
                .as_array()?
                .iter()
                .map(JobObservation::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// A policy's decision for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobDecision {
    /// New replica target (at least 1).
    pub target_replicas: u32,
    /// Explicit request drop rate in `[0, 1]` (Faro-Penalty variants;
    /// zero for all other policies).
    pub drop_rate: f64,
    /// Per-class breakdown of `target_replicas` (heterogeneous regime
    /// only). Invariant: when `Some`, the class counts sum to
    /// `target_replicas`.
    pub classes: Option<ClassAlloc>,
}

impl serde::Serialize for JobDecision {
    /// Hand-written so class-free decisions (every homogeneous run)
    /// keep the pre-class wire format.
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"target_replicas\":");
        self.target_replicas.serialize_json(out);
        out.push_str(",\"drop_rate\":");
        self.drop_rate.serialize_json(out);
        if let Some(classes) = &self.classes {
            out.push_str(",\"classes\":");
            classes.serialize_json(out);
        }
        out.push('}');
    }
}

impl Deserialize for JobDecision {}

impl JobDecision {
    /// A plain scale decision: `n` replicas, no request drops, no
    /// class placement. The constructor for every drop-free policy —
    /// unlike [`Self::keep`] it can never resurrect a stale drop rate
    /// from the observation.
    pub fn replicas(n: u32) -> Self {
        Self {
            target_replicas: n,
            drop_rate: 0.0,
            classes: None,
        }
    }

    /// A classed scale decision; the replica target is the allocation
    /// total, upholding the `classes`/`target_replicas` invariant.
    pub fn classed(alloc: ClassAlloc) -> Self {
        Self {
            target_replicas: alloc.total(),
            drop_rate: 0.0,
            classes: Some(alloc),
        }
    }

    /// Keep the current allocation of an observation — including its
    /// drop rate and per-class placement. Policies that never drop
    /// should prefer [`Self::replicas`] when scaling so they do not
    /// carry a drop rate forward.
    pub fn keep(obs: &JobObservation) -> Self {
        Self {
            target_replicas: obs.target_replicas,
            drop_rate: obs.drop_rate,
            classes: obs.class_target,
        }
    }

    /// This decision with the drop rate replaced.
    pub fn with_drop_rate(mut self, drop_rate: f64) -> Self {
        self.drop_rate = drop_rate;
        self
    }

    /// Parses a decision from its wire format. `classes` is optional,
    /// so pre-class JSON parses to a class-free decision. Returns
    /// `None` on a shape mismatch.
    pub fn from_json(v: &serde_json::Value) -> Option<Self> {
        let classes = match v.get("classes") {
            None => None,
            Some(a) => Some(ClassAlloc::from_json(a)?),
        };
        Some(Self {
            target_replicas: u32::try_from(v.get("target_replicas")?.as_u64()?).ok()?,
            drop_rate: v.get("drop_rate")?.as_f64()?,
            classes,
        })
    }
}

/// The control plane's desired cluster state: one [`JobDecision`] per
/// job, keyed by [`JobId`].
///
/// This is what a [`crate::Policy`] emits and what a backend actuates.
/// Jobs absent from the map are left untouched by actuation, so a
/// partial decider (e.g. a reactive booster) composes with a full one.
/// Iteration is always in ascending `JobId` order, which keeps
/// event-driven backends deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DesiredState {
    decisions: BTreeMap<JobId, JobDecision>,
}

impl DesiredState {
    /// An empty desired state (touches no job).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of jobs with a decision.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether no job has a decision.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Sets (or replaces) the decision for one job.
    pub fn set(&mut self, id: JobId, decision: JobDecision) {
        self.decisions.insert(id, decision);
    }

    /// The decision for one job, if present.
    pub fn get(&self, id: JobId) -> Option<JobDecision> {
        self.decisions.get(&id).copied()
    }

    /// Mutable access to the decision for one job.
    pub fn get_mut(&mut self, id: JobId) -> Option<&mut JobDecision> {
        self.decisions.get_mut(&id)
    }

    /// Whether a job has a decision.
    pub fn contains(&self, id: JobId) -> bool {
        self.decisions.contains_key(&id)
    }

    /// Decisions in ascending `JobId` order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, JobDecision)> + '_ {
        self.decisions.iter().map(|(&id, &d)| (id, d))
    }

    /// Mutable decisions in ascending `JobId` order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (JobId, &mut JobDecision)> {
        self.decisions.iter_mut().map(|(&id, d)| (id, d))
    }

    /// Replica targets in ascending `JobId` order (convenience for
    /// tests and positional bookkeeping inside policies).
    pub fn targets(&self) -> impl Iterator<Item = u32> + '_ {
        self.decisions.values().map(|d| d.target_replicas)
    }

    /// Sum of replica targets across all decisions.
    pub fn total_replicas(&self) -> u32 {
        self.decisions.values().map(|d| d.target_replicas).sum()
    }

    /// Sum of per-class allocations across all decisions. Classless
    /// decisions contribute their whole target to class 0 (the
    /// reference class), matching how backends actuate them.
    pub fn class_totals(&self, n_classes: usize) -> ClassAlloc {
        let mut totals = ClassAlloc::zero(n_classes);
        for d in self.decisions.values() {
            match &d.classes {
                Some(alloc) => {
                    for c in 0..alloc.n_classes().min(n_classes) {
                        totals.add(c, i64::from(alloc.count(c)));
                    }
                }
                None => totals.add(0, i64::from(d.target_replicas)),
            }
        }
        totals
    }

    /// A full-coverage state that keeps every job's current allocation.
    pub fn keep_all(snapshot: &ClusterSnapshot) -> Self {
        snapshot
            .job_ids()
            .zip(snapshot.jobs.iter().map(JobDecision::keep))
            .collect()
    }

    /// Parses a desired state from its wire format: an array of
    /// [`JobDecision`] objects each tagged with its `"job"` index.
    /// Duplicate indices keep the last entry (map semantics). Returns
    /// `None` on a shape mismatch.
    pub fn from_json(v: &serde_json::Value) -> Option<Self> {
        v.as_array()?
            .iter()
            .map(|entry| {
                let id = JobId::new(usize::try_from(entry.get("job")?.as_u64()?).ok()?);
                Some((id, JobDecision::from_json(entry)?))
            })
            .collect::<Option<Self>>()
    }
}

impl serde::Serialize for DesiredState {
    /// Hand-written v1 actuation wire format: an ascending-`JobId`
    /// array whose entries are each job's [`JobDecision`] wire object
    /// prefixed with its `"job"` index — the decision fields are
    /// byte-identical to [`JobDecision`]'s own serializer, so a
    /// backend that already parses decisions parses desired states.
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        let mut first = true;
        for (id, d) in self.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"job\":");
            id.index().serialize_json(out);
            out.push_str(",\"target_replicas\":");
            d.target_replicas.serialize_json(out);
            out.push_str(",\"drop_rate\":");
            d.drop_rate.serialize_json(out);
            if let Some(classes) = &d.classes {
                out.push_str(",\"classes\":");
                classes.serialize_json(out);
            }
            out.push('}');
        }
        out.push(']');
    }
}

impl Deserialize for DesiredState {}

impl FromIterator<(JobId, JobDecision)> for DesiredState {
    fn from_iter<T: IntoIterator<Item = (JobId, JobDecision)>>(iter: T) -> Self {
        Self {
            decisions: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for DesiredState {
    type Item = (JobId, JobDecision);
    type IntoIter = btree_map::IntoIter<JobId, JobDecision>;

    fn into_iter(self) -> Self::IntoIter {
        self.decisions.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_model_quota() {
        assert_eq!(
            ResourceModel::replicas(ReplicaCount::new(32)).replica_quota(),
            ReplicaCount::new(32)
        );
        let uneven = ResourceModel {
            cpu_per_replica: 1.0,
            mem_per_replica: 2.0,
            cluster_mem: 8.0,
            ..ResourceModel::replicas(ReplicaCount::new(10))
        };
        // Memory binds: 8 / 2 = 4 replicas.
        assert_eq!(uneven.replica_quota(), ReplicaCount::new(4));
    }

    #[test]
    fn fractional_per_replica_costs_divide_before_rounding() {
        // 0.5 vCPU per replica: 10 vCPU must yield 20 replicas, i.e.
        // the division happens on fractional replicas before the single
        // floor of the binding resource.
        let fractional = ResourceModel {
            cpu_per_replica: 0.5,
            mem_per_replica: 0.25,
            cluster_cpu: 10.0,
            cluster_mem: 8.0,
            ..ResourceModel::replicas(ReplicaCount::new(0))
        };
        // cpu: 10 / 0.5 = 20; mem: 8 / 0.25 = 32 -> cpu binds at 20.
        assert_eq!(fractional.replica_quota(), ReplicaCount::new(20));
        // A fractional ratio floors once: 10 / 0.6 = 16.67 -> 16.
        let ragged = ResourceModel {
            cpu_per_replica: 0.6,
            ..fractional
        };
        assert_eq!(ragged.replica_quota(), ReplicaCount::new(16));
    }

    #[test]
    fn class_alloc_arithmetic() {
        let mut a = ClassAlloc::zero(2);
        assert_eq!(a.total(), 0);
        a.set(0, 3);
        a.add(1, 5);
        a.add(1, -2);
        assert_eq!(a.as_slice(), &[3, 3]);
        assert_eq!(a.total(), 6);
        // Out-of-range classes are inert and read as zero.
        a.set(3, 9);
        assert_eq!(a.count(3), 0);
        a.add(0, -10);
        assert_eq!(a.count(0), 0, "saturates at zero");
        assert_eq!(ClassAlloc::single(1, 4, 3).as_slice(), &[0, 4, 0]);
        assert_eq!(ClassAlloc::from_counts(&[1, 2]).unwrap().total(), 3);
        assert!(ClassAlloc::from_counts(&[1; 5]).is_none());
        assert_eq!(
            format!("{}", ClassAlloc::from_counts(&[1, 2]).unwrap()),
            "[1,2]"
        );
    }

    #[test]
    fn heterogeneous_quota_and_usage() {
        let model = ResourceModel::heterogeneous(
            vec![ReplicaClass::gpu("gpu"), ReplicaClass::cpu("cpu", 3.0)],
            24.0, // vCPU
            8.0,  // GPUs
            64.0, // GB
        );
        assert!(model.has_classes());
        // GPU class: min(24/1 cpu, 8/1 gpu, 64/4 mem) = 8.
        assert_eq!(model.class_quota(0), ReplicaCount::new(8));
        // CPU class: min(24/1 cpu, 64/1 mem) = 24 (gpu cost 0 ignored).
        assert_eq!(model.class_quota(1), ReplicaCount::new(24));
        assert_eq!(model.replica_quota(), ReplicaCount::new(32));
        let alloc = ClassAlloc::from_counts(&[2, 4]).unwrap();
        let usage = model.usage_of(&alloc);
        assert_eq!(usage, [6.0, 2.0, 12.0]);
        assert!(model.fits(&usage));
        assert!(!model.fits(&[25.0, 0.0, 0.0]));
        // Affinity: empty allows everything, otherwise exact names.
        let mut spec = JobSpec::resnet34("a");
        assert!(spec.allows_class("cpu"));
        spec.class_affinity = vec!["gpu".into()];
        assert!(spec.allows_class("gpu"));
        assert!(!spec.allows_class("cpu"));
    }

    #[test]
    fn spill_fill_drains_fast_capacity_before_spilling() {
        let model = ResourceModel::heterogeneous(
            vec![ReplicaClass::gpu("gpu"), ReplicaClass::cpu("cpu", 3.0)],
            24.0,
            4.0,
            64.0,
        );
        let mut used = [0.0; RESOURCE_DIMS];
        // First job grabs all 4 GPUs then spills 2 onto CPUs.
        let a = model.spill_fill(6, &mut used);
        assert_eq!(a.as_slice(), &[4, 2]);
        // Second job sees no GPU headroom left.
        let b = model.spill_fill(3, &mut used);
        assert_eq!(b.as_slice(), &[0, 3]);
        assert!(model.fits(&used));
        // Overflow past every class parks on the slowest class.
        let mut tight = [24.0, 4.0, 64.0];
        let c = model.spill_fill(2, &mut tight);
        assert_eq!(c.as_slice(), &[0, 2]);
    }

    #[test]
    fn single_class_wire_format_is_unchanged() {
        // The exact byte strings the pre-class derive emitted; the
        // hand-written impls must keep emitting them whenever no class
        // data is present.
        let model = ResourceModel::replicas(ReplicaCount::new(4));
        assert_eq!(
            serde_json::to_string(&model).unwrap(),
            "{\"cpu_per_replica\":1,\"mem_per_replica\":1,\"cluster_cpu\":4,\"cluster_mem\":4}"
        );
        let decision = JobDecision::replicas(3);
        assert_eq!(
            serde_json::to_string(&decision).unwrap(),
            "{\"target_replicas\":3,\"drop_rate\":0}"
        );
        let spec = JobSpec::resnet18("b");
        assert_eq!(
            serde_json::to_string(&spec).unwrap(),
            "{\"name\":\"b\",\"slo\":{\"latency\":0.4,\"percentile\":0.99},\
             \"priority\":1,\"processing_time\":0.1}"
        );
        // With class data the new fields appear after the legacy ones.
        let classed = JobDecision::classed(ClassAlloc::from_counts(&[1, 2]).unwrap());
        assert_eq!(
            serde_json::to_string(&classed).unwrap(),
            "{\"target_replicas\":3,\"drop_rate\":0,\"classes\":[1,2]}"
        );
    }

    #[test]
    fn job_spec_presets() {
        let j34 = JobSpec::resnet34("a");
        assert!((j34.processing_time - 0.180).abs() < 1e-12);
        assert!((j34.slo.latency - 0.720).abs() < 1e-12);
        let j18 = JobSpec::resnet18("b");
        assert!((j18.slo.latency - 0.400).abs() < 1e-12);
        // Both SLOs are 4x the processing time.
        assert!((j34.slo.latency / j34.processing_time - 4.0).abs() < 1e-9);
        assert!((j18.slo.latency / j18.processing_time - 4.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_totals() {
        let mk = |target| JobObservation {
            spec: Arc::new(JobSpec::resnet34("x")),
            target_replicas: target,
            ready_replicas: target,
            queue_len: 0,
            arrival_rate_history: Arc::new(vec![]),
            recent_arrival_rate: 0.0,
            mean_processing_time: 0.18,
            recent_tail_latency: 0.1,
            drop_rate: 0.0,
            class_target: None,
            class_ready: None,
        };
        let snap = ClusterSnapshot {
            now: SimTimeMs::ZERO,
            resources: ResourceModel::replicas(ReplicaCount::new(16)),
            jobs: vec![mk(3), mk(5)],
        };
        assert_eq!(snap.total_target_replicas(), ReplicaCount::new(8));
        assert_eq!(snap.replica_quota(), ReplicaCount::new(16));
        assert_eq!(snap.job_ids().collect::<Vec<_>>().len(), 2);
        assert_eq!(snap.job(JobId::new(1)).unwrap().target_replicas, 5);
        assert!(snap.job(JobId::new(2)).is_none());
    }

    #[test]
    fn desired_state_iterates_in_job_order() {
        let mut ds = DesiredState::new();
        ds.set(JobId::new(2), JobDecision::replicas(7));
        ds.set(JobId::new(0), JobDecision::replicas(3));
        assert_eq!(ds.len(), 2);
        assert!(!ds.contains(JobId::new(1)));
        assert_eq!(ds.get(JobId::new(2)).unwrap().target_replicas, 7);
        assert_eq!(ds.targets().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(ds.total_replicas(), 10);
        // Ascending JobId order regardless of insertion order.
        let ids: Vec<_> = ds.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(format!("{}", JobId::new(4)), "job4");
    }
}
