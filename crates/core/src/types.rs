//! Shared vocabulary types: jobs, SLOs, resources, snapshots, and scale
//! decisions.

use crate::units::{RatePerMin, ReplicaCount, SimTimeMs};
use serde::{Deserialize, Serialize};
use std::collections::btree_map;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Typed identifier of a job (one pre-trained model receiving queries).
///
/// Wraps the job's position in the cluster's job list so a decision can
/// never be applied to the wrong job through positional off-by-one:
/// every control-plane API keys on `JobId`, not slice order. Not
/// serialized anywhere — reports key jobs by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(usize);

impl JobId {
    /// Wraps a raw job index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw index, for slicing into per-job storage.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A latency service-level objective: a target and a percentile
/// (paper Sec. 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// Latency target in seconds (e.g. 0.720).
    pub latency: f64,
    /// Percentile in `(0, 1)` (e.g. 0.99 for the 99th percentile).
    pub percentile: f64,
}

impl Slo {
    /// The paper's default evaluation SLO: 720 ms at the 99th percentile
    /// (4x the ResNet34 processing time of 180 ms).
    pub fn paper_default() -> Self {
        Self {
            latency: 0.720,
            percentile: 0.99,
        }
    }
}

/// Static description of one inference job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Human-readable name (e.g. "resnet34-azure-3").
    pub name: String,
    /// The job's SLO.
    pub slo: Slo,
    /// Priority coefficient `pi` in cluster objectives (default 1).
    pub priority: f64,
    /// Nominal per-request processing time in seconds (e.g. 0.180 for
    /// ResNet34 on CPU). Used as the initial estimate before
    /// measurements arrive.
    pub processing_time: f64,
}

impl JobSpec {
    /// A ResNet34-shaped job with the paper's default SLO.
    pub fn resnet34(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            slo: Slo::paper_default(),
            priority: 1.0,
            processing_time: 0.180,
        }
    }

    /// A ResNet18-shaped job: 100 ms processing, 400 ms SLO (paper
    /// Sec. 6.3).
    pub fn resnet18(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            slo: Slo {
                latency: 0.400,
                percentile: 0.99,
            },
            priority: 1.0,
            processing_time: 0.100,
        }
    }
}

/// Homogeneous per-replica resource demand and cluster capacity
/// (paper Sec. 6: 1 vCPU + 1 GB per Ray Serve replica).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceModel {
    /// vCPU per replica.
    pub cpu_per_replica: f64,
    /// Memory (GB) per replica.
    pub mem_per_replica: f64,
    /// Total vCPU available for replicas.
    pub cluster_cpu: f64,
    /// Total memory (GB) available for replicas.
    pub cluster_mem: f64,
}

impl ResourceModel {
    /// A cluster sized in whole replicas (the paper's framing: "total
    /// replicas" via Kubernetes resource quota).
    pub fn replicas(total: ReplicaCount) -> Self {
        Self {
            cpu_per_replica: 1.0,
            mem_per_replica: 1.0,
            cluster_cpu: total.as_f64(),
            cluster_mem: total.as_f64(),
        }
    }

    /// The replica quota implied by the binding resource.
    pub fn replica_quota(&self) -> ReplicaCount {
        let by_cpu = self.cluster_cpu / self.cpu_per_replica;
        let by_mem = self.cluster_mem / self.mem_per_replica;
        ReplicaCount::new(by_cpu.min(by_mem).floor().max(0.0) as u32)
    }
}

/// Per-job observation delivered to policies at every tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobObservation {
    /// The job's static spec, shared with the runtime (interned so a
    /// snapshot does not deep-copy the spec on every tick).
    pub spec: Arc<JobSpec>,
    /// Current autoscale target (replicas the job is entitled to).
    pub target_replicas: u32,
    /// Replicas actually serving (excludes cold-starting ones).
    pub ready_replicas: u32,
    /// Router queue length right now.
    pub queue_len: usize,
    /// Completed per-minute arrival counts, oldest first (the metric the
    /// Faro router exports continually). Shared copy-on-write with the
    /// runtime's history so building a snapshot is O(1) in the elapsed
    /// trace length; serializes as a plain JSON array of raw rates.
    pub arrival_rate_history: Arc<Vec<RatePerMin>>,
    /// Arrival rate over the last reactive interval (requests/second).
    pub recent_arrival_rate: f64,
    /// Measured mean per-request processing time (seconds); falls back
    /// to the spec value when no requests completed yet.
    pub mean_processing_time: f64,
    /// Tail latency at the job's SLO percentile over the last reactive
    /// interval (seconds; infinite when requests were dropped).
    pub recent_tail_latency: f64,
    /// Current explicit drop rate setting in `[0, 1]`.
    pub drop_rate: f64,
}

/// Cluster-wide observation delivered to policies at every tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Simulation/wall time (serialized as `f64` seconds).
    pub now: SimTimeMs,
    /// Resource capacity.
    pub resources: ResourceModel,
    /// Per-job observations, indexed by [`JobId`].
    pub jobs: Vec<JobObservation>,
}

impl ClusterSnapshot {
    /// Total replica quota.
    pub fn replica_quota(&self) -> ReplicaCount {
        self.resources.replica_quota()
    }

    /// Sum of current target replicas.
    pub fn total_target_replicas(&self) -> ReplicaCount {
        self.jobs
            .iter()
            .map(|j| ReplicaCount::new(j.target_replicas))
            .sum()
    }

    /// Identifiers of every job in the snapshot, in ascending order.
    pub fn job_ids(&self) -> impl Iterator<Item = JobId> + '_ {
        (0..self.jobs.len()).map(JobId::new)
    }

    /// The observation for one job, if present.
    pub fn job(&self, id: JobId) -> Option<&JobObservation> {
        self.jobs.get(id.index())
    }
}

/// A policy's decision for one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobDecision {
    /// New replica target (at least 1).
    pub target_replicas: u32,
    /// Explicit request drop rate in `[0, 1]` (Faro-Penalty variants;
    /// zero for all other policies).
    pub drop_rate: f64,
}

impl JobDecision {
    /// Keep the current allocation of an observation.
    pub fn keep(obs: &JobObservation) -> Self {
        Self {
            target_replicas: obs.target_replicas,
            drop_rate: obs.drop_rate,
        }
    }
}

/// The control plane's desired cluster state: one [`JobDecision`] per
/// job, keyed by [`JobId`].
///
/// This is what a [`crate::Policy`] emits and what a backend actuates.
/// Jobs absent from the map are left untouched by actuation, so a
/// partial decider (e.g. a reactive booster) composes with a full one.
/// Iteration is always in ascending `JobId` order, which keeps
/// event-driven backends deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DesiredState {
    decisions: BTreeMap<JobId, JobDecision>,
}

impl DesiredState {
    /// An empty desired state (touches no job).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of jobs with a decision.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether no job has a decision.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Sets (or replaces) the decision for one job.
    pub fn set(&mut self, id: JobId, decision: JobDecision) {
        self.decisions.insert(id, decision);
    }

    /// The decision for one job, if present.
    pub fn get(&self, id: JobId) -> Option<JobDecision> {
        self.decisions.get(&id).copied()
    }

    /// Mutable access to the decision for one job.
    pub fn get_mut(&mut self, id: JobId) -> Option<&mut JobDecision> {
        self.decisions.get_mut(&id)
    }

    /// Whether a job has a decision.
    pub fn contains(&self, id: JobId) -> bool {
        self.decisions.contains_key(&id)
    }

    /// Decisions in ascending `JobId` order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, JobDecision)> + '_ {
        self.decisions.iter().map(|(&id, &d)| (id, d))
    }

    /// Mutable decisions in ascending `JobId` order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (JobId, &mut JobDecision)> {
        self.decisions.iter_mut().map(|(&id, d)| (id, d))
    }

    /// Replica targets in ascending `JobId` order (convenience for
    /// tests and positional bookkeeping inside policies).
    pub fn targets(&self) -> impl Iterator<Item = u32> + '_ {
        self.decisions.values().map(|d| d.target_replicas)
    }

    /// Sum of replica targets across all decisions.
    pub fn total_replicas(&self) -> u32 {
        self.decisions.values().map(|d| d.target_replicas).sum()
    }

    /// A full-coverage state that keeps every job's current allocation.
    pub fn keep_all(snapshot: &ClusterSnapshot) -> Self {
        snapshot
            .job_ids()
            .zip(snapshot.jobs.iter().map(JobDecision::keep))
            .collect()
    }
}

impl FromIterator<(JobId, JobDecision)> for DesiredState {
    fn from_iter<T: IntoIterator<Item = (JobId, JobDecision)>>(iter: T) -> Self {
        Self {
            decisions: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for DesiredState {
    type Item = (JobId, JobDecision);
    type IntoIter = btree_map::IntoIter<JobId, JobDecision>;

    fn into_iter(self) -> Self::IntoIter {
        self.decisions.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_model_quota() {
        assert_eq!(
            ResourceModel::replicas(ReplicaCount::new(32)).replica_quota(),
            ReplicaCount::new(32)
        );
        let uneven = ResourceModel {
            cpu_per_replica: 1.0,
            mem_per_replica: 2.0,
            cluster_cpu: 10.0,
            cluster_mem: 8.0,
        };
        // Memory binds: 8 / 2 = 4 replicas.
        assert_eq!(uneven.replica_quota(), ReplicaCount::new(4));
    }

    #[test]
    fn job_spec_presets() {
        let j34 = JobSpec::resnet34("a");
        assert!((j34.processing_time - 0.180).abs() < 1e-12);
        assert!((j34.slo.latency - 0.720).abs() < 1e-12);
        let j18 = JobSpec::resnet18("b");
        assert!((j18.slo.latency - 0.400).abs() < 1e-12);
        // Both SLOs are 4x the processing time.
        assert!((j34.slo.latency / j34.processing_time - 4.0).abs() < 1e-9);
        assert!((j18.slo.latency / j18.processing_time - 4.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_totals() {
        let mk = |target| JobObservation {
            spec: Arc::new(JobSpec::resnet34("x")),
            target_replicas: target,
            ready_replicas: target,
            queue_len: 0,
            arrival_rate_history: Arc::new(vec![]),
            recent_arrival_rate: 0.0,
            mean_processing_time: 0.18,
            recent_tail_latency: 0.1,
            drop_rate: 0.0,
        };
        let snap = ClusterSnapshot {
            now: SimTimeMs::ZERO,
            resources: ResourceModel::replicas(ReplicaCount::new(16)),
            jobs: vec![mk(3), mk(5)],
        };
        assert_eq!(snap.total_target_replicas(), ReplicaCount::new(8));
        assert_eq!(snap.replica_quota(), ReplicaCount::new(16));
        assert_eq!(snap.job_ids().collect::<Vec<_>>().len(), 2);
        assert_eq!(snap.job(JobId::new(1)).unwrap().target_replicas, 5);
        assert!(snap.job(JobId::new(2)).is_none());
    }

    #[test]
    fn desired_state_iterates_in_job_order() {
        let mut ds = DesiredState::new();
        let d = |n| JobDecision {
            target_replicas: n,
            drop_rate: 0.0,
        };
        ds.set(JobId::new(2), d(7));
        ds.set(JobId::new(0), d(3));
        assert_eq!(ds.len(), 2);
        assert!(!ds.contains(JobId::new(1)));
        assert_eq!(ds.get(JobId::new(2)).unwrap().target_replicas, 7);
        assert_eq!(ds.targets().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(ds.total_replicas(), 10);
        // Ascending JobId order regardless of insertion order.
        let ids: Vec<_> = ds.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(format!("{}", JobId::new(4)), "job4");
    }
}
