//! Drop-request penalty multipliers (paper Sec. 3.2, Table 5).
//!
//! When a constrained cluster must drop requests, the dropped fraction
//! incurs a penalty shaped like the service-credit tables of public
//! cloud SLAs (the paper borrows AWS's): availability at or above 99%
//! costs nothing, then 25%, 50%, and 100% credits at the 95% and 90%
//! availability breakpoints. The *effective utility* of a job is
//! `EU = phi(d) * U` where `phi(d) = 1 - penalty(1 - d)`.
//!
//! The step-shaped table is itself a plateau; the relaxed variant
//! interpolates the table piecewise-linearly so the optimizer sees a
//! slope everywhere (paper Sec. 3.4).

use serde::{Deserialize, Serialize};

/// The AWS-style service-credit table: `penalty(availability)`.
///
/// # Examples
///
/// ```
/// use faro_core::penalty::step_penalty;
///
/// assert_eq!(step_penalty(0.995), 0.0);
/// assert_eq!(step_penalty(0.97), 0.25);
/// assert_eq!(step_penalty(0.92), 0.50);
/// assert_eq!(step_penalty(0.50), 1.00);
/// ```
pub fn step_penalty(availability: f64) -> f64 {
    if availability >= 0.99 {
        0.0
    } else if availability >= 0.95 {
        0.25
    } else if availability >= 0.90 {
        0.50
    } else {
        1.0
    }
}

/// Piecewise-linear relaxation of [`step_penalty`]: linear between the
/// breakpoints `(0.90, 1.0) -> (0.95, 0.50) -> (0.99, 0.25) -> (0.99+, 0)`,
/// and linear from `(0, 1)` below 90% availability.
pub fn relaxed_penalty(availability: f64) -> f64 {
    let a = availability.clamp(0.0, 1.0);
    // Breakpoints (availability, penalty), increasing availability.
    const POINTS: [(f64, f64); 4] = [(0.0, 1.0), (0.90, 1.0), (0.95, 0.50), (0.99, 0.0)];
    if a >= 0.99 {
        return 0.0;
    }
    for w in POINTS.windows(2) {
        let (a0, p0) = w[0];
        let (a1, p1) = w[1];
        if a <= a1 {
            if a1 == a0 {
                return p1;
            }
            return p0 + (p1 - p0) * (a - a0) / (a1 - a0);
        }
    }
    0.0
}

/// Which penalty shape to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PenaltyShape {
    /// The exact step table (precise formulation).
    Step,
    /// The piecewise-linear relaxation (plateau-free).
    Relaxed,
}

/// The effective-utility multiplier `phi(d) = 1 - penalty(1 - d)` for a
/// drop rate `d` in `[0, 1]`.
pub fn phi(drop_rate: f64, shape: PenaltyShape) -> f64 {
    let availability = 1.0 - drop_rate.clamp(0.0, 1.0);
    let p = match shape {
        PenaltyShape::Step => step_penalty(availability),
        PenaltyShape::Relaxed => relaxed_penalty(availability),
    };
    1.0 - p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_table_breakpoints() {
        assert_eq!(step_penalty(1.0), 0.0);
        assert_eq!(step_penalty(0.99), 0.0);
        assert_eq!(step_penalty(0.9899), 0.25);
        assert_eq!(step_penalty(0.95), 0.25);
        assert_eq!(step_penalty(0.9499), 0.50);
        assert_eq!(step_penalty(0.90), 0.50);
        assert_eq!(step_penalty(0.8999), 1.0);
        assert_eq!(step_penalty(0.0), 1.0);
    }

    #[test]
    fn relaxed_matches_step_at_anchors() {
        assert_eq!(relaxed_penalty(1.0), 0.0);
        assert_eq!(relaxed_penalty(0.99), 0.0);
        assert!((relaxed_penalty(0.95) - 0.50).abs() < 1e-12);
        assert!((relaxed_penalty(0.90) - 1.0).abs() < 1e-12);
        assert_eq!(relaxed_penalty(0.5), 1.0);
    }

    #[test]
    fn relaxed_is_monotone_decreasing_in_availability() {
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let a = f64::from(i) / 100.0;
            let p = relaxed_penalty(a);
            assert!(p <= prev + 1e-12, "availability {a}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn relaxed_has_no_interior_plateau_in_active_band() {
        // Between 90% and 99% availability the slope must be non-zero.
        let p1 = relaxed_penalty(0.93);
        let p2 = relaxed_penalty(0.935);
        assert!(p2 < p1);
        let p3 = relaxed_penalty(0.97);
        let p4 = relaxed_penalty(0.975);
        assert!(p4 < p3);
    }

    #[test]
    fn phi_semantics() {
        // No drops: full effective utility.
        assert_eq!(phi(0.0, PenaltyShape::Step), 1.0);
        assert_eq!(phi(0.0, PenaltyShape::Relaxed), 1.0);
        // Dropping under 1% costs nothing (availability >= 99%).
        assert_eq!(phi(0.01, PenaltyShape::Step), 1.0);
        // Dropping 6% lands in the 50% credit band.
        assert_eq!(phi(0.06, PenaltyShape::Step), 0.5);
        // Dropping everything zeroes utility.
        assert_eq!(phi(1.0, PenaltyShape::Step), 0.0);
        assert_eq!(phi(1.0, PenaltyShape::Relaxed), 0.0);
    }

    #[test]
    fn phi_clamps_out_of_range() {
        assert_eq!(phi(-0.5, PenaltyShape::Step), 1.0);
        assert_eq!(phi(1.5, PenaltyShape::Relaxed), 0.0);
    }
}
