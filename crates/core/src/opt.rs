//! The multi-tenant cluster optimization (paper Sec. 3.4 and 4.2).
//!
//! Decision variables are per-job continuous replica counts `x_i >= 1`
//! (and, for Penalty objectives, drop rates `d_i` in `[0, 1]`). The
//! objective aggregates per-job expected utilities over the predicted
//! arrival-rate trajectories; constraints cap total vCPU and memory.
//!
//! Two *fidelities* are provided:
//!
//! - [`Fidelity::Precise`]: step utility, raw M/D/c latency (infinite
//!   when unstable), step penalty table — the formulation of Eq. 3.
//!   Plateau-ridden; local solvers stall on it (Figure 5).
//! - [`Fidelity::Relaxed`]: inverse-power utility, relaxed latency with
//!   the `rho_max` knee, piecewise-linear penalty — plateau-free and
//!   solvable in sub-second time by COBYLA.

use crate::error::{Error, Result};
use crate::objective::{ClusterObjective, JobUtility};
use crate::penalty::{phi, PenaltyShape};
use crate::types::{ResourceModel, Slo};
use crate::utility::{step_utility, RelaxedUtility};
use faro_queueing::{mdc, upper_bound, RelaxedLatency};
use faro_solver::{Problem, Solution, Solver};

/// One job's share of the optimization input.
#[derive(Debug, Clone, PartialEq)]
pub struct JobWorkload {
    /// Predicted arrival-rate trajectories (requests/second), each
    /// covering the planning window. One trajectory means point
    /// prediction; several mean probabilistic samples.
    pub lambda_trajectories: Vec<Vec<f64>>,
    /// Mean per-request processing time (seconds).
    pub processing_time: f64,
    /// The job's SLO.
    pub slo: Slo,
    /// Priority coefficient.
    pub priority: f64,
}

impl JobWorkload {
    /// A workload with a single constant-rate trajectory.
    pub fn constant(lambda: f64, processing_time: f64, slo: Slo, priority: f64) -> Self {
        Self {
            lambda_trajectories: vec![vec![lambda]],
            processing_time,
            slo,
            priority,
        }
    }
}

/// Whether to evaluate the precise (plateau) or relaxed formulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Step utility + raw M/D/c + step penalty (Eq. 3).
    Precise,
    /// Sloppified, plateau-free variants (Sec. 3.4).
    Relaxed,
}

/// Which latency estimator feeds the utility (ablation knob, Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// The M/D/c queueing model (Faro's default).
    MDc,
    /// The pessimistic upper-bound estimator.
    UpperBound,
}

/// The assembled multi-tenant optimization problem.
#[derive(Debug, Clone)]
pub struct MultiTenantProblem {
    jobs: Vec<JobWorkload>,
    resources: ResourceModel,
    objective: ClusterObjective,
    fidelity: Fidelity,
    latency_model: LatencyModel,
    relaxed_utility: RelaxedUtility,
    relaxed_latency: RelaxedLatency,
}

impl MultiTenantProblem {
    /// Builds a problem over the given jobs and resources.
    ///
    /// # Errors
    ///
    /// Fails when there are no jobs, a job has no trajectory, or the
    /// quota cannot host one replica per job.
    pub fn new(
        jobs: Vec<JobWorkload>,
        resources: ResourceModel,
        objective: ClusterObjective,
        fidelity: Fidelity,
    ) -> Result<Self> {
        if jobs.is_empty() {
            return Err(Error::InvalidSnapshot("no jobs to optimize".into()));
        }
        for (i, j) in jobs.iter().enumerate() {
            if j.lambda_trajectories.is_empty() || j.lambda_trajectories.iter().any(Vec::is_empty) {
                return Err(Error::InvalidSnapshot(format!("job {i} has no trajectory")));
            }
            if j.processing_time.is_nan() || j.processing_time <= 0.0 {
                return Err(Error::InvalidSnapshot(format!(
                    "job {i} has no processing time"
                )));
            }
        }
        if (resources.replica_quota() as usize) < jobs.len() {
            return Err(Error::InvalidSnapshot(format!(
                "quota {} cannot host one replica for each of {} jobs",
                resources.replica_quota(),
                jobs.len()
            )));
        }
        Ok(Self {
            jobs,
            resources,
            objective,
            fidelity,
            latency_model: LatencyModel::MDc,
            relaxed_utility: RelaxedUtility::default(),
            relaxed_latency: RelaxedLatency::default(),
        })
    }

    /// Overrides the latency model (ablation).
    pub fn with_latency_model(mut self, model: LatencyModel) -> Self {
        self.latency_model = model;
        self
    }

    /// Overrides the relaxed utility sharpness.
    pub fn with_utility(mut self, u: RelaxedUtility) -> Self {
        self.relaxed_utility = u;
        self
    }

    /// Overrides the relaxed latency knee.
    pub fn with_relaxed_latency(mut self, l: RelaxedLatency) -> Self {
        self.relaxed_latency = l;
        self
    }

    /// Number of jobs.
    pub fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The job workloads.
    pub fn jobs(&self) -> &[JobWorkload] {
        &self.jobs
    }

    /// The cluster objective in use.
    pub fn objective(&self) -> ClusterObjective {
        self.objective
    }

    /// The resource model in use.
    pub fn resources(&self) -> ResourceModel {
        self.resources
    }

    /// Estimated latency for job `i` at fractional replicas `x` and
    /// arrival rate `lambda` (already drop-adjusted).
    fn latency(&self, job: &JobWorkload, lambda: f64, x: f64) -> f64 {
        let k = job.slo.percentile;
        let p = job.processing_time;
        let lambda = lambda.max(0.0);
        match (self.fidelity, self.latency_model) {
            (_, LatencyModel::UpperBound) => {
                // One second's arrivals treated as a simultaneous burst
                // (the paper's kappa; Sec. 3.3's example uses kappa =
                // lambda = 40 with p = 150 ms and 600 ms SLO -> 10
                // replicas).
                upper_bound::completion_time(p, lambda, x.max(1.0).round() as u32)
                    .map(|w| w.max(p))
                    .unwrap_or(f64::INFINITY)
            }
            (Fidelity::Precise, LatencyModel::MDc) => {
                let n = x.max(1.0).round() as u32;
                mdc::latency_percentile(k, p, lambda, n).unwrap_or(f64::INFINITY)
            }
            (Fidelity::Relaxed, LatencyModel::MDc) => self
                .relaxed_latency
                .latency_fractional(k, p, lambda, x.max(1.0))
                .unwrap_or(f64::INFINITY),
        }
    }

    /// Expected utility of job `i` at fractional replicas `x`, averaged
    /// over trajectories and window steps (Sec. 4.1), before the drop
    /// multiplier.
    pub fn expected_utility(&self, i: usize, x: f64, drop_rate: f64) -> f64 {
        let job = &self.jobs[i];
        let mut sum = 0.0;
        let mut count = 0usize;
        for traj in &job.lambda_trajectories {
            for &lambda in traj {
                let lambda_eff = lambda * (1.0 - drop_rate.clamp(0.0, 1.0));
                let l = self.latency(job, lambda_eff, x);
                let u = match self.fidelity {
                    Fidelity::Precise => step_utility(l, job.slo.latency),
                    Fidelity::Relaxed => self.relaxed_utility.value(l, job.slo.latency),
                };
                sum += u;
                count += 1;
            }
        }
        sum / count.max(1) as f64
    }

    /// Per-job utility record at an allocation.
    fn job_utility(&self, i: usize, x: f64, d: f64) -> JobUtility {
        let u = self.expected_utility(i, x, d);
        let shape = match self.fidelity {
            Fidelity::Precise => PenaltyShape::Step,
            Fidelity::Relaxed => PenaltyShape::Relaxed,
        };
        JobUtility {
            utility: u,
            effective_utility: phi(d, shape) * u,
            priority: self.jobs[i].priority,
        }
    }

    /// Cluster objective value (maximize convention) at a continuous
    /// allocation. `drops` may be empty when the objective does not use
    /// drop rates.
    pub fn cluster_value(&self, xs: &[f64], drops: &[f64]) -> f64 {
        let utilities: Vec<JobUtility> = (0..self.jobs.len())
            .map(|i| {
                let d = drops.get(i).copied().unwrap_or(0.0);
                self.job_utility(i, xs[i], d)
            })
            .collect();
        self.objective.aggregate(&utilities)
    }

    /// Cluster objective value at an integer allocation.
    pub fn cluster_value_integer(&self, xs: &[u32], drops: &[f64]) -> f64 {
        let xf: Vec<f64> = xs.iter().map(|&x| f64::from(x)).collect();
        self.cluster_value(&xf, drops)
    }

    /// Splits a solver variable vector into `(replicas, drops)`.
    fn split_vars<'a>(&self, v: &'a [f64]) -> (&'a [f64], &'a [f64]) {
        let n = self.jobs.len();
        if self.objective.uses_drop_rates() {
            (&v[..n], &v[n..])
        } else {
            (v, &[])
        }
    }

    /// Solves the continuous problem with the given solver, starting
    /// from the current allocation (replica counts per job).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn solve(&self, solver: &dyn Solver, current: &[u32]) -> Result<ContinuousAllocation> {
        let n = self.jobs.len();
        let mut x0: Vec<f64> = current.iter().map(|&c| f64::from(c).max(1.0)).collect();
        x0.resize(n, 1.0);
        if self.objective.uses_drop_rates() {
            x0.extend(std::iter::repeat_n(0.0, n));
        }
        let adapter = ProblemAdapter { inner: self };
        let sol: Solution = solver.solve(&adapter, &x0)?;
        let (xs, ds) = self.split_vars(&sol.x);
        Ok(ContinuousAllocation {
            replicas: xs.to_vec(),
            drop_rates: if ds.is_empty() {
                vec![0.0; n]
            } else {
                ds.to_vec()
            },
            objective_value: -sol.objective,
            evals: sol.evals,
        })
    }

    /// Converts a continuous allocation into integer replica counts,
    /// "staying within the cluster size" (Sec. 4.2): round to nearest
    /// (at least 1) and, if the rounding overshoots the quota, trim the
    /// replicas whose removal costs the least cluster objective.
    ///
    /// Deliberately *not* a greedy integer re-optimization: the paper's
    /// post-processing only converts, and a greedy repair would mask
    /// the relaxation's contribution (integer +1 steps can cross the
    /// step utility's threshold even where the continuous problem is a
    /// plateau — see the Figure 16 ablation).
    pub fn integerize(&self, alloc: &ContinuousAllocation) -> Vec<u32> {
        let quota = self.resources.replica_quota();
        let n = self.jobs.len();
        let mut xs: Vec<u32> = alloc
            .replicas
            .iter()
            .map(|&x| (x.round().max(1.0)) as u32)
            .collect();
        // If rounding exceeds the quota, trim from the jobs with the
        // lowest marginal loss.
        let mut total: u32 = xs.iter().sum();
        while total > quota {
            let mut best: Option<(usize, f64)> = None;
            for i in 0..n {
                if xs[i] <= 1 {
                    continue;
                }
                let before = self.cluster_value_integer(&xs, &alloc.drop_rates);
                xs[i] -= 1;
                let after = self.cluster_value_integer(&xs, &alloc.drop_rates);
                xs[i] += 1;
                let loss = before - after;
                if best.is_none_or(|(_, b)| loss < b) {
                    best = Some((i, loss));
                }
            }
            match best {
                Some((i, _)) => {
                    xs[i] -= 1;
                    total -= 1;
                }
                None => break, // All jobs at one replica already.
            }
        }
        xs
    }

    /// Stage-3 shrinking (paper Sec. 4.3): iteratively removes replicas
    /// from jobs at full predicted utility while the *cluster* objective
    /// stays unchanged.
    pub fn shrink(&self, xs: &mut [u32], drops: &[f64]) {
        let eps = 1e-9;
        for i in 0..xs.len() {
            loop {
                if xs[i] <= 1 {
                    break;
                }
                let u = self.expected_utility(
                    i,
                    f64::from(xs[i]),
                    drops.get(i).copied().unwrap_or(0.0),
                );
                if u < 1.0 - 1e-9 {
                    break; // Only shrink jobs at (predicted) utility 1.
                }
                let before = self.cluster_value_integer(xs, drops);
                xs[i] -= 1;
                let after = self.cluster_value_integer(xs, drops);
                if after < before - eps {
                    xs[i] += 1; // Cluster utility changed: stop here.
                    break;
                }
            }
        }
    }
}

/// Result of the continuous solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousAllocation {
    /// Fractional replica counts per job.
    pub replicas: Vec<f64>,
    /// Drop rates per job (zero when unused).
    pub drop_rates: Vec<f64>,
    /// Cluster objective at the solution (maximize convention).
    pub objective_value: f64,
    /// Function evaluations spent.
    pub evals: usize,
}

/// Adapts [`MultiTenantProblem`] to the solver's minimize convention.
struct ProblemAdapter<'a> {
    inner: &'a MultiTenantProblem,
}

impl Problem for ProblemAdapter<'_> {
    fn dim(&self) -> usize {
        let n = self.inner.jobs.len();
        if self.inner.objective.uses_drop_rates() {
            2 * n
        } else {
            n
        }
    }

    fn objective(&self, v: &[f64]) -> f64 {
        let (xs, ds) = self.inner.split_vars(v);
        -self.inner.cluster_value(xs, ds)
    }

    fn num_constraints(&self) -> usize {
        2 // vCPU and memory.
    }

    fn constraints(&self, v: &[f64], out: &mut [f64]) {
        let (xs, _) = self.inner.split_vars(v);
        let r = self.inner.resources;
        let cpu: f64 = xs.iter().map(|&x| x.max(1.0) * r.cpu_per_replica).sum();
        let mem: f64 = xs.iter().map(|&x| x.max(1.0) * r.mem_per_replica).sum();
        out[0] = r.cluster_cpu - cpu;
        out[1] = r.cluster_mem - mem;
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        let n = self.inner.jobs.len();
        let quota = f64::from(self.inner.resources.replica_quota());
        let mut b = vec![(1.0, quota); n];
        if self.inner.objective.uses_drop_rates() {
            b.extend(std::iter::repeat_n((0.0, 1.0), n));
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faro_solver::Cobyla;

    fn slo() -> Slo {
        Slo::paper_default()
    }

    fn two_job_problem(quota: u32, objective: ClusterObjective) -> MultiTenantProblem {
        // Job 0 needs many replicas (high rate), job 1 few.
        let jobs = vec![
            JobWorkload::constant(40.0, 0.180, slo(), 1.0),
            JobWorkload::constant(5.0, 0.180, slo(), 1.0),
        ];
        MultiTenantProblem::new(
            jobs,
            ResourceModel::replicas(quota),
            objective,
            Fidelity::Relaxed,
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_input() {
        let r = ResourceModel::replicas(8);
        assert!(
            MultiTenantProblem::new(vec![], r, ClusterObjective::Sum, Fidelity::Relaxed).is_err()
        );
        let no_traj = JobWorkload {
            lambda_trajectories: vec![],
            processing_time: 0.1,
            slo: slo(),
            priority: 1.0,
        };
        assert!(MultiTenantProblem::new(
            vec![no_traj],
            r,
            ClusterObjective::Sum,
            Fidelity::Relaxed
        )
        .is_err());
        // Quota 1 cannot host 2 jobs.
        let jobs = vec![
            JobWorkload::constant(1.0, 0.1, slo(), 1.0),
            JobWorkload::constant(1.0, 0.1, slo(), 1.0),
        ];
        assert!(MultiTenantProblem::new(
            jobs,
            ResourceModel::replicas(1),
            ClusterObjective::Sum,
            Fidelity::Relaxed
        )
        .is_err());
    }

    #[test]
    fn expected_utility_monotone_in_replicas() {
        let p = two_job_problem(32, ClusterObjective::Sum);
        let mut prev = 0.0;
        for x in 1..=16 {
            let u = p.expected_utility(0, f64::from(x), 0.0);
            assert!(u >= prev - 1e-9, "x={x}");
            prev = u;
        }
        // Many replicas satisfy the SLO fully.
        assert!((p.expected_utility(0, 16.0, 0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn solver_finds_needy_job() {
        let p = two_job_problem(32, ClusterObjective::Sum);
        let alloc = p.solve(&Cobyla::fast(), &[1, 1]).unwrap();
        let xs = p.integerize(&alloc);
        assert!(xs[0] > xs[1], "needy job should get more replicas: {xs:?}");
        assert!(xs.iter().sum::<u32>() <= 32);
        // Both jobs should end up satisfied in a right-sized cluster.
        assert!(p.expected_utility(0, f64::from(xs[0]), 0.0) > 0.9, "{xs:?}");
        assert!(p.expected_utility(1, f64::from(xs[1]), 0.0) > 0.9, "{xs:?}");
    }

    #[test]
    fn integerize_respects_quota_exactly() {
        let p = two_job_problem(10, ClusterObjective::Sum);
        // Deliberately infeasible continuous allocation.
        let alloc = ContinuousAllocation {
            replicas: vec![9.7, 8.2],
            drop_rates: vec![0.0, 0.0],
            objective_value: 0.0,
            evals: 0,
        };
        let xs = p.integerize(&alloc);
        assert!(xs.iter().sum::<u32>() <= 10, "{xs:?}");
        assert!(xs.iter().all(|&x| x >= 1));
    }

    #[test]
    fn shrink_removes_waste() {
        let p = two_job_problem(32, ClusterObjective::Sum);
        // Grossly overprovisioned allocation: both at utility 1.
        let mut xs = vec![20u32, 10u32];
        p.shrink(&mut xs, &[0.0, 0.0]);
        let total: u32 = xs.iter().sum();
        assert!(total < 30, "shrinking should reclaim replicas: {xs:?}");
        // Utility must still be 1 for both.
        for (i, &x) in xs.iter().enumerate() {
            assert!(
                (p.expected_utility(i, f64::from(x), 0.0) - 1.0).abs() < 1e-9,
                "{xs:?}"
            );
        }
    }

    #[test]
    fn shrink_skips_unsatisfied_jobs() {
        // Tiny quota: nobody reaches utility 1; shrink must not move.
        let jobs = vec![
            JobWorkload::constant(100.0, 0.180, slo(), 1.0),
            JobWorkload::constant(100.0, 0.180, slo(), 1.0),
        ];
        let p = MultiTenantProblem::new(
            jobs,
            ResourceModel::replicas(4),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap();
        let mut xs = vec![2u32, 2u32];
        let before = xs.clone();
        p.shrink(&mut xs, &[0.0, 0.0]);
        assert_eq!(xs, before);
    }

    #[test]
    fn penalty_objective_adds_drop_variables() {
        let p = two_job_problem(32, ClusterObjective::PenaltySum);
        let alloc = p.solve(&Cobyla::fast(), &[1, 1]).unwrap();
        assert_eq!(alloc.drop_rates.len(), 2);
        for d in &alloc.drop_rates {
            assert!((0.0..=1.0).contains(d));
        }
    }

    #[test]
    fn precise_fidelity_exposes_plateau() {
        // With the step utility and a badly overloaded job, local probes
        // around small x all evaluate to utility 0: a plateau.
        let jobs = vec![JobWorkload::constant(200.0, 0.180, slo(), 1.0)];
        let p = MultiTenantProblem::new(
            jobs,
            ResourceModel::replicas(64),
            ClusterObjective::Sum,
            Fidelity::Precise,
        )
        .unwrap();
        let u1 = p.expected_utility(0, 1.0, 0.0);
        let u2 = p.expected_utility(0, 3.0, 0.0);
        assert_eq!(u1, 0.0);
        assert_eq!(u2, 0.0);
        // The relaxed version distinguishes them.
        let jobs = vec![JobWorkload::constant(200.0, 0.180, slo(), 1.0)];
        let p = MultiTenantProblem::new(
            jobs,
            ResourceModel::replicas(64),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap();
        assert!(p.expected_utility(0, 3.0, 0.0) > p.expected_utility(0, 1.0, 0.0));
    }

    #[test]
    fn upper_bound_model_overprovisions() {
        // Paper Sec. 3.3: the upper-bound estimator demands more
        // replicas than M/D/c for the same utility.
        let mk = |model| {
            let jobs = vec![JobWorkload::constant(
                40.0,
                0.150,
                Slo {
                    latency: 0.6,
                    percentile: 0.9999,
                },
                1.0,
            )];
            MultiTenantProblem::new(
                jobs,
                ResourceModel::replicas(32),
                ClusterObjective::Sum,
                Fidelity::Relaxed,
            )
            .unwrap()
            .with_latency_model(model)
        };
        let mdc_p = mk(LatencyModel::MDc);
        let ub_p = mk(LatencyModel::UpperBound);
        let first_full = |p: &MultiTenantProblem| {
            (1..=32)
                .find(|&x| p.expected_utility(0, f64::from(x), 0.0) > 1.0 - 1e-9)
                .unwrap_or(33)
        };
        assert!(first_full(&mdc_p) < first_full(&ub_p));
    }
}
