//! The multi-tenant cluster optimization (paper Sec. 3.4 and 4.2).
//!
//! Decision variables are per-job continuous replica counts `x_i >= 1`
//! (and, for Penalty objectives, drop rates `d_i` in `[0, 1]`). The
//! objective aggregates per-job expected utilities over the predicted
//! arrival-rate trajectories; constraints cap total vCPU and memory.
//!
//! Two *fidelities* are provided:
//!
//! - [`Fidelity::Precise`]: step utility, raw M/D/c latency (infinite
//!   when unstable), step penalty table — the formulation of Eq. 3.
//!   Plateau-ridden; local solvers stall on it (Figure 5).
//! - [`Fidelity::Relaxed`]: inverse-power utility, relaxed latency with
//!   the `rho_max` knee, piecewise-linear penalty — plateau-free and
//!   solvable in sub-second time by COBYLA.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, OnceLock};

use crate::error::{Error, Result};
use crate::objective::{ClusterObjective, JobUtility};
use crate::penalty::{phi, PenaltyShape};
use crate::types::{ResourceModel, Slo};
use crate::units::ReplicaCount;
use crate::utility::{step_utility, RelaxedUtility};
use faro_queueing::{mdc, upper_bound, RelaxedLatency};
use faro_solver::{Problem, Solution, Solver};

/// Off-table latency memo entries are bounded so a pathological solver
/// cannot grow the map without limit; the map is simply cleared when it
/// fills (entries are cheap to recompute).
const MEMO_CAPACITY: usize = 1 << 20;

/// Dense latency tables are built only while `distinct rates × quota`
/// stays under this entry budget (~134 MB of `f64`); beyond it lookups
/// fall back to the keyed memo, which returns the same bits.
const MAX_TABLE_ENTRIES: usize = 1 << 24;

/// Per-solve latency tables over integer replica counts.
///
/// The predicted arrival rates are fixed for the lifetime of a problem,
/// so for every (job, trajectory rate) pair the latency at *every*
/// integer replica count `1..=quota` can be computed with one Erlang-B
/// recurrence sweep ([`mdc::latency_percentile_sweep`] /
/// [`RelaxedLatency::latency_sweep`]) instead of re-running the O(c)
/// recurrence in the solver's innermost loop. Entries are bit-identical
/// to the direct estimator calls they replace.
#[derive(Debug, Default)]
struct LatencyTables {
    /// `index[job]`: clamped arrival-rate bits -> row id in `dense`.
    /// Ordered map so table internals never depend on hash iteration
    /// order (faro-lint: nondeterministic-iteration).
    index: Vec<BTreeMap<u64, u32>>,
    /// `dense[job][row]`: latency at every integer replica count
    /// (entry `n - 1` is the latency at `n`).
    dense: Vec<Vec<Vec<f64>>>,
    /// `steps[job]`: one row id per trajectory step, flattened in
    /// `lambda_trajectories` iteration order. Lets the zero-drop
    /// utility path walk precomputed rows without hashing the rate
    /// bits on every step of every objective evaluation.
    steps: Vec<Vec<u32>>,
    /// Row length (the replica quota when the tables were built).
    quota: usize,
}

/// Interior-mutable caches shared by every objective evaluation of one
/// problem instance (including parallel solver populations and the
/// hierarchical grouped solve, which borrows the flat problem).
///
/// Cloning a [`MultiTenantProblem`] resets the cache: it is a pure
/// memoization layer, never part of the problem's identity.
#[derive(Debug, Default)]
struct SolveCache {
    /// Lazily built on the first latency evaluation; `None` when the
    /// latency model has nothing worth tabulating (upper bound is O(1)).
    tables: OnceLock<Option<LatencyTables>>,
    /// Keyed memo for rates outside the tables — drop-adjusted
    /// `lambda * (1 - d)` with `d > 0`: `(job, rate bits, servers)`.
    memo: Mutex<BTreeMap<(usize, u64, u32), f64>>,
}

/// One job's share of the optimization input.
#[derive(Debug, Clone, PartialEq)]
pub struct JobWorkload {
    /// Predicted arrival-rate trajectories (requests/second), each
    /// covering the planning window. One trajectory means point
    /// prediction; several mean probabilistic samples.
    pub lambda_trajectories: Vec<Vec<f64>>,
    /// Mean per-request processing time (seconds).
    pub processing_time: f64,
    /// The job's SLO.
    pub slo: Slo,
    /// Priority coefficient.
    pub priority: f64,
}

impl JobWorkload {
    /// A workload with a single constant-rate trajectory.
    pub fn constant(lambda: f64, processing_time: f64, slo: Slo, priority: f64) -> Self {
        Self {
            lambda_trajectories: vec![vec![lambda]],
            processing_time,
            slo,
            priority,
        }
    }
}

/// Whether to evaluate the precise (plateau) or relaxed formulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Step utility + raw M/D/c + step penalty (Eq. 3).
    Precise,
    /// Sloppified, plateau-free variants (Sec. 3.4).
    Relaxed,
}

/// Which latency estimator feeds the utility (ablation knob, Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// The M/D/c queueing model (Faro's default).
    MDc,
    /// The pessimistic upper-bound estimator.
    UpperBound,
}

/// The assembled multi-tenant optimization problem.
#[derive(Debug)]
pub struct MultiTenantProblem {
    jobs: Vec<JobWorkload>,
    resources: ResourceModel,
    objective: ClusterObjective,
    fidelity: Fidelity,
    latency_model: LatencyModel,
    relaxed_utility: RelaxedUtility,
    relaxed_latency: RelaxedLatency,
    cache: SolveCache,
}

impl Clone for MultiTenantProblem {
    /// Clones the problem definition with a fresh (empty) solve cache.
    fn clone(&self) -> Self {
        Self {
            jobs: self.jobs.clone(),
            resources: self.resources.clone(),
            objective: self.objective,
            fidelity: self.fidelity,
            latency_model: self.latency_model,
            relaxed_utility: self.relaxed_utility,
            relaxed_latency: self.relaxed_latency,
            cache: SolveCache::default(),
        }
    }
}

impl MultiTenantProblem {
    /// Builds a problem over the given jobs and resources.
    ///
    /// # Errors
    ///
    /// Fails when there are no jobs, a job has no trajectory, or the
    /// quota cannot host one replica per job.
    pub fn new(
        jobs: Vec<JobWorkload>,
        resources: ResourceModel,
        objective: ClusterObjective,
        fidelity: Fidelity,
    ) -> Result<Self> {
        if jobs.is_empty() {
            return Err(Error::InvalidSnapshot("no jobs to optimize".into()));
        }
        for (i, j) in jobs.iter().enumerate() {
            if j.lambda_trajectories.is_empty() || j.lambda_trajectories.iter().any(Vec::is_empty) {
                return Err(Error::InvalidSnapshot(format!("job {i} has no trajectory")));
            }
            if j.processing_time.is_nan() || j.processing_time <= 0.0 {
                return Err(Error::InvalidSnapshot(format!(
                    "job {i} has no processing time"
                )));
            }
        }
        if (resources.replica_quota().get() as usize) < jobs.len() {
            return Err(Error::InvalidSnapshot(format!(
                "quota {} cannot host one replica for each of {} jobs",
                resources.replica_quota(),
                jobs.len()
            )));
        }
        Ok(Self {
            jobs,
            resources,
            objective,
            fidelity,
            latency_model: LatencyModel::MDc,
            relaxed_utility: RelaxedUtility::default(),
            relaxed_latency: RelaxedLatency::default(),
            cache: SolveCache::default(),
        })
    }

    /// Overrides the latency model (ablation).
    pub fn with_latency_model(mut self, model: LatencyModel) -> Self {
        self.latency_model = model;
        self.cache = SolveCache::default();
        self
    }

    /// Overrides the relaxed utility sharpness.
    pub fn with_utility(mut self, u: RelaxedUtility) -> Self {
        self.relaxed_utility = u;
        self
    }

    /// Overrides the relaxed latency knee.
    pub fn with_relaxed_latency(mut self, l: RelaxedLatency) -> Self {
        self.relaxed_latency = l;
        self.cache = SolveCache::default();
        self
    }

    /// Number of jobs.
    pub fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The job workloads.
    pub fn jobs(&self) -> &[JobWorkload] {
        &self.jobs
    }

    /// The cluster objective in use.
    pub fn objective(&self) -> ClusterObjective {
        self.objective
    }

    /// The resource model in use.
    pub fn resources(&self) -> &ResourceModel {
        &self.resources
    }

    /// The lazily built per-solve latency tables (`None` when the
    /// latency model is not tabulated).
    fn tables(&self) -> Option<&LatencyTables> {
        self.cache
            .tables
            .get_or_init(|| self.build_latency_tables())
            .as_ref()
    }

    /// Builds the per-job latency tables from the fixed trajectory
    /// rates. One recurrence sweep per (job, distinct rate) replaces the
    /// per-evaluation recurrence in the solver's innermost loop.
    fn build_latency_tables(&self) -> Option<LatencyTables> {
        if self.latency_model == LatencyModel::UpperBound {
            return None; // Closed form, O(1): nothing to memoize.
        }
        let quota = self.resources.replica_quota();
        if quota.is_zero() {
            return None;
        }
        // Exact distinct-rate pre-pass: the dense tables hold one
        // quota-length row per (job, distinct rate). At sweep scale
        // (thousands of jobs, five-digit quotas) that product reaches
        // gigabytes, so past a fixed entry budget skip the tables and
        // let the keyed memo serve lookups — bit-identical values,
        // bounded memory.
        let mut rows_total: usize = 0;
        for job in &self.jobs {
            let mut distinct: BTreeSet<u64> = BTreeSet::new();
            for traj in &job.lambda_trajectories {
                for &raw in traj {
                    distinct.insert(raw.max(0.0).to_bits());
                }
            }
            rows_total += distinct.len();
        }
        if rows_total.saturating_mul(quota.get() as usize) > MAX_TABLE_ENTRIES {
            return None;
        }
        let mut index = Vec::with_capacity(self.jobs.len());
        let mut dense = Vec::with_capacity(self.jobs.len());
        let mut steps = Vec::with_capacity(self.jobs.len());
        for job in &self.jobs {
            let k = job.slo.percentile;
            let p = job.processing_time;
            // The knee latency is rate-independent: compute it once per
            // job and share it across every trajectory rate.
            let knees = match self.fidelity {
                Fidelity::Relaxed => Some(self.relaxed_latency.knee_latencies(k, p, quota)),
                Fidelity::Precise => None,
            };
            let mut by_rate: BTreeMap<u64, u32> = BTreeMap::new();
            let mut rows: Vec<Vec<f64>> = Vec::new();
            let mut step_rows: Vec<u32> = Vec::new();
            for traj in &job.lambda_trajectories {
                for &raw in traj {
                    let lambda = raw.max(0.0); // Same clamp as `latency`.
                    let id = *by_rate.entry(lambda.to_bits()).or_insert_with(|| {
                        let row = match &knees {
                            Some(Ok(kn)) => {
                                self.relaxed_latency.latency_sweep(k, p, lambda, kn).ok()
                            }
                            // Knee computation failed (invalid k/p):
                            // the direct path errors for every call.
                            Some(Err(_)) => None,
                            None => mdc::latency_percentile_sweep(k, p, lambda, quota).ok(),
                        };
                        rows.push(row.unwrap_or_else(|| vec![f64::INFINITY; quota.get() as usize]));
                        (rows.len() - 1) as u32
                    });
                    step_rows.push(id);
                }
            }
            index.push(by_rate);
            dense.push(rows);
            steps.push(step_rows);
        }
        Some(LatencyTables {
            index,
            dense,
            steps,
            quota: quota.get() as usize,
        })
    }

    /// M/D/c-family latency for job `i` at an *integer* replica count:
    /// table hit for trajectory rates, keyed memo for drop-adjusted
    /// rates, direct estimator call as the last resort. Every path
    /// returns the same bits the direct call would.
    fn integer_latency(&self, i: usize, k: f64, p: f64, lambda: f64, n: u32) -> f64 {
        if let Some(tables) = self.tables() {
            if let Some(&id) = tables.index[i].get(&lambda.to_bits()) {
                if let Some(&l) = tables.dense[i][id as usize].get((n as usize).wrapping_sub(1)) {
                    return l;
                }
            }
        }
        let key = (i, lambda.to_bits(), n);
        if let Some(&v) = self.cache.memo.lock().expect("latency memo").get(&key) {
            return v;
        }
        let v = match self.fidelity {
            Fidelity::Precise => mdc::latency_percentile(k, p, lambda, ReplicaCount::new(n)),
            Fidelity::Relaxed => self
                .relaxed_latency
                .latency(k, p, lambda, ReplicaCount::new(n)),
        }
        .unwrap_or(f64::INFINITY);
        let mut memo = self.cache.memo.lock().expect("latency memo");
        if memo.len() >= MEMO_CAPACITY {
            memo.clear();
        }
        memo.insert(key, v);
        v
    }

    /// Estimated latency for job `i` at fractional replicas `x` and
    /// arrival rate `lambda` (already drop-adjusted).
    fn latency(&self, i: usize, lambda: f64, x: f64) -> f64 {
        let job = &self.jobs[i];
        let k = job.slo.percentile;
        let p = job.processing_time;
        let lambda = lambda.max(0.0);
        match (self.fidelity, self.latency_model) {
            (_, LatencyModel::UpperBound) => {
                // One second's arrivals treated as a simultaneous burst
                // (the paper's kappa; Sec. 3.3's example uses kappa =
                // lambda = 40 with p = 150 ms and 600 ms SLO -> 10
                // replicas).
                upper_bound::completion_time(
                    p,
                    lambda,
                    ReplicaCount::new(x.max(1.0).round() as u32),
                )
                .map(|w| w.max(p))
                .unwrap_or(f64::INFINITY)
            }
            (Fidelity::Precise, LatencyModel::MDc) => {
                let n = x.max(1.0).round() as u32;
                self.integer_latency(i, k, p, lambda, n)
            }
            (Fidelity::Relaxed, LatencyModel::MDc) => {
                // Mirrors `RelaxedLatency::latency_fractional` over the
                // cached integer entries, arithmetic branch by branch.
                let x = x.max(1.0);
                if !x.is_finite() {
                    return f64::INFINITY; // The direct path rejects it.
                }
                let lo = x.floor();
                let hi = x.ceil();
                let l_lo = self.integer_latency(i, k, p, lambda, lo as u32);
                if lo == hi {
                    return l_lo;
                }
                // The relaxed estimate is finite on valid input, so a
                // non-finite entry means the direct fractional call
                // would have errored as a whole (errors do not depend
                // on the server count here).
                let l_hi = self.integer_latency(i, k, p, lambda, hi as u32);
                if l_lo.is_infinite() || l_hi.is_infinite() {
                    return f64::INFINITY;
                }
                let frac = x - lo;
                l_lo + (l_hi - l_lo) * frac
            }
        }
    }

    /// Expected utility of job `i` at fractional replicas `x`, averaged
    /// over trajectories and window steps (Sec. 4.1), before the drop
    /// multiplier.
    pub fn expected_utility(&self, i: usize, x: f64, drop_rate: f64) -> f64 {
        // Solver hot path: with no drop adjustment every step rate hits
        // its precomputed table row, so skip the hashing entirely.
        if drop_rate.clamp(0.0, 1.0) == 0.0 && self.latency_model == LatencyModel::MDc {
            if let Some(tables) = self.tables() {
                if let Some(v) = self.tabulated_utility(tables, i, x) {
                    return v;
                }
            }
        }
        let job = &self.jobs[i];
        let mut sum = 0.0;
        let mut count = 0usize;
        for traj in &job.lambda_trajectories {
            for &lambda in traj {
                // With `drop_rate == 0` this is exactly `lambda` (the
                // multiplier is 1.0), so the table rows built from the
                // trajectory rates are hit bit-for-bit.
                let lambda_eff = lambda * (1.0 - drop_rate.clamp(0.0, 1.0));
                let l = self.latency(i, lambda_eff, x);
                let u = match self.fidelity {
                    Fidelity::Precise => step_utility(l, job.slo.latency),
                    Fidelity::Relaxed => self.relaxed_utility.value(l, job.slo.latency),
                };
                sum += u;
                count += 1;
            }
        }
        sum / count.max(1) as f64
    }

    /// Zero-drop utility over the precomputed per-step rows: two array
    /// reads plus the interpolation per trajectory step, with the
    /// floor/ceil/frac of `x` hoisted out of the step loop. Returns
    /// `None` when any step would leave the tables (replica count
    /// beyond the quota, non-finite `x`) so the caller falls back to
    /// the general path. Bit-identical to that path: same rows, same
    /// arithmetic, same summation order.
    fn tabulated_utility(&self, tables: &LatencyTables, i: usize, x: f64) -> Option<f64> {
        let job = &self.jobs[i];
        let steps = &tables.steps[i];
        let rows = &tables.dense[i];
        let slo_latency = job.slo.latency;
        let mut sum = 0.0;
        match self.fidelity {
            Fidelity::Precise => {
                let n = x.max(1.0).round();
                if !(n >= 1.0 && n <= tables.quota as f64) {
                    return None;
                }
                let n = n as usize;
                for &id in steps {
                    sum += step_utility(rows[id as usize][n - 1], slo_latency);
                }
            }
            Fidelity::Relaxed => {
                let x = x.max(1.0);
                if !x.is_finite() {
                    return None;
                }
                let lo = x.floor();
                let hi = x.ceil();
                if hi > tables.quota as f64 {
                    return None;
                }
                let lo_i = lo as usize;
                if lo == hi {
                    for &id in steps {
                        sum += self
                            .relaxed_utility
                            .value(rows[id as usize][lo_i - 1], slo_latency);
                    }
                } else {
                    let hi_i = hi as usize;
                    let frac = x - lo;
                    for &id in steps {
                        let row = &rows[id as usize];
                        let l_lo = row[lo_i - 1];
                        let l_hi = row[hi_i - 1];
                        let l = if l_lo.is_infinite() || l_hi.is_infinite() {
                            f64::INFINITY
                        } else {
                            l_lo + (l_hi - l_lo) * frac
                        };
                        sum += self.relaxed_utility.value(l, slo_latency);
                    }
                }
            }
        }
        Some(sum / steps.len().max(1) as f64)
    }

    /// Per-job utility record at an allocation.
    fn job_utility(&self, i: usize, x: f64, d: f64) -> JobUtility {
        let u = self.expected_utility(i, x, d);
        let shape = match self.fidelity {
            Fidelity::Precise => PenaltyShape::Step,
            Fidelity::Relaxed => PenaltyShape::Relaxed,
        };
        JobUtility {
            utility: u,
            effective_utility: phi(d, shape) * u,
            priority: self.jobs[i].priority,
        }
    }

    /// Cluster objective value (maximize convention) at a continuous
    /// allocation. `drops` may be empty when the objective does not use
    /// drop rates.
    pub fn cluster_value(&self, xs: &[f64], drops: &[f64]) -> f64 {
        let utilities: Vec<JobUtility> = (0..self.jobs.len())
            .map(|i| {
                let d = drops.get(i).copied().unwrap_or(0.0);
                self.job_utility(i, xs[i], d)
            })
            .collect();
        self.objective.aggregate(&utilities)
    }

    /// Cluster objective value at an integer allocation.
    pub fn cluster_value_integer(&self, xs: &[u32], drops: &[f64]) -> f64 {
        let xf: Vec<f64> = xs.iter().map(|&x| f64::from(x)).collect();
        self.cluster_value(&xf, drops)
    }

    /// Splits a solver variable vector into `(replicas, drops)`.
    fn split_vars<'a>(&self, v: &'a [f64]) -> (&'a [f64], &'a [f64]) {
        let n = self.jobs.len();
        if self.objective.uses_drop_rates() {
            (&v[..n], &v[n..])
        } else {
            (v, &[])
        }
    }

    /// Solves the continuous problem with the given solver, starting
    /// from the current allocation (replica counts per job).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn solve(&self, solver: &dyn Solver, current: &[u32]) -> Result<ContinuousAllocation> {
        let n = self.jobs.len();
        let mut x0: Vec<f64> = current.iter().map(|&c| f64::from(c).max(1.0)).collect();
        x0.resize(n, 1.0);
        if self.objective.uses_drop_rates() {
            x0.extend(std::iter::repeat_n(0.0, n));
        }
        let adapter = ProblemAdapter { inner: self };
        let sol: Solution = solver.solve(&adapter, &x0)?;
        let (xs, ds) = self.split_vars(&sol.x);
        Ok(ContinuousAllocation {
            replicas: xs.to_vec(),
            drop_rates: if ds.is_empty() {
                vec![0.0; n]
            } else {
                ds.to_vec()
            },
            objective_value: -sol.objective,
            evals: sol.evals,
        })
    }

    /// Converts a continuous allocation into integer replica counts,
    /// "staying within the cluster size" (Sec. 4.2): round to nearest
    /// (at least 1) and, if the rounding overshoots the quota, trim the
    /// replicas whose removal costs the least cluster objective.
    ///
    /// Deliberately *not* a greedy integer re-optimization: the paper's
    /// post-processing only converts, and a greedy repair would mask
    /// the relaxation's contribution (integer +1 steps can cross the
    /// step utility's threshold even where the continuous problem is a
    /// plateau — see the Figure 16 ablation).
    pub fn integerize(&self, alloc: &ContinuousAllocation) -> Vec<u32> {
        let quota = self.resources.replica_quota().get();
        let n = self.jobs.len();
        let mut xs: Vec<u32> = alloc
            .replicas
            .iter()
            .map(|&x| (x.round().max(1.0)) as u32)
            .collect();
        // If rounding exceeds the quota, trim from the jobs with the
        // lowest marginal loss. Only job `i`'s utility changes when
        // `xs[i]` is decremented, so the per-job utilities are cached
        // and a candidate is scored by patching one entry before
        // re-aggregating — the aggregate sees the exact same values a
        // full recomputation would produce.
        let mut total: u32 = xs.iter().sum();
        if total <= quota {
            return xs;
        }
        let drop_of = |i: usize| alloc.drop_rates.get(i).copied().unwrap_or(0.0);
        let mut utils: Vec<JobUtility> = (0..n)
            .map(|i| self.job_utility(i, f64::from(xs[i]), drop_of(i)))
            .collect();
        while total > quota {
            let before = self.objective.aggregate(&utils);
            let mut best: Option<(usize, f64, JobUtility)> = None;
            for i in 0..n {
                if xs[i] <= 1 {
                    continue;
                }
                let cand = self.job_utility(i, f64::from(xs[i] - 1), drop_of(i));
                let saved = std::mem::replace(&mut utils[i], cand);
                let after = self.objective.aggregate(&utils);
                utils[i] = saved;
                let loss = before - after;
                if best.as_ref().is_none_or(|&(_, b, _)| loss < b) {
                    best = Some((i, loss, cand));
                }
            }
            match best {
                Some((i, _, cand)) => {
                    xs[i] -= 1;
                    utils[i] = cand;
                    total -= 1;
                }
                None => break, // All jobs at one replica already.
            }
        }
        xs
    }

    /// Stage-3 shrinking (paper Sec. 4.3): iteratively removes replicas
    /// from jobs at full predicted utility while the *cluster* objective
    /// stays unchanged.
    pub fn shrink(&self, xs: &mut [u32], drops: &[f64]) {
        let eps = 1e-9;
        let drop_of = |i: usize| drops.get(i).copied().unwrap_or(0.0);
        // Same incremental scheme as `integerize`: a removal only
        // changes job `i`'s utility, so cache the vector and patch.
        let mut utils: Vec<JobUtility> = (0..xs.len())
            .map(|i| self.job_utility(i, f64::from(xs[i]), drop_of(i)))
            .collect();
        for i in 0..xs.len() {
            loop {
                if xs[i] <= 1 {
                    break;
                }
                if utils[i].utility < 1.0 - 1e-9 {
                    break; // Only shrink jobs at (predicted) utility 1.
                }
                let before = self.objective.aggregate(&utils);
                let cand = self.job_utility(i, f64::from(xs[i] - 1), drop_of(i));
                let saved = std::mem::replace(&mut utils[i], cand);
                let after = self.objective.aggregate(&utils);
                if after < before - eps {
                    utils[i] = saved; // Cluster utility changed: stop here.
                    break;
                }
                xs[i] -= 1;
            }
        }
    }
}

/// Result of the continuous solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousAllocation {
    /// Fractional replica counts per job.
    pub replicas: Vec<f64>,
    /// Drop rates per job (zero when unused).
    pub drop_rates: Vec<f64>,
    /// Cluster objective at the solution (maximize convention).
    pub objective_value: f64,
    /// Function evaluations spent.
    pub evals: usize,
}

/// Adapts [`MultiTenantProblem`] to the solver's minimize convention.
struct ProblemAdapter<'a> {
    inner: &'a MultiTenantProblem,
}

impl Problem for ProblemAdapter<'_> {
    fn dim(&self) -> usize {
        let n = self.inner.jobs.len();
        if self.inner.objective.uses_drop_rates() {
            2 * n
        } else {
            n
        }
    }

    fn objective(&self, v: &[f64]) -> f64 {
        let (xs, ds) = self.inner.split_vars(v);
        -self.inner.cluster_value(xs, ds)
    }

    fn num_constraints(&self) -> usize {
        2 // vCPU and memory.
    }

    fn constraints(&self, v: &[f64], out: &mut [f64]) {
        let (xs, _) = self.inner.split_vars(v);
        let r = &self.inner.resources;
        let cpu: f64 = xs.iter().map(|&x| x.max(1.0) * r.cpu_per_replica).sum();
        let mem: f64 = xs.iter().map(|&x| x.max(1.0) * r.mem_per_replica).sum();
        out[0] = r.cluster_cpu - cpu;
        out[1] = r.cluster_mem - mem;
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        let n = self.inner.jobs.len();
        let quota = self.inner.resources.replica_quota().as_f64();
        let mut b = vec![(1.0, quota); n];
        if self.inner.objective.uses_drop_rates() {
            b.extend(std::iter::repeat_n((0.0, 1.0), n));
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faro_solver::Cobyla;

    fn slo() -> Slo {
        Slo::paper_default()
    }

    fn two_job_problem(quota: u32, objective: ClusterObjective) -> MultiTenantProblem {
        // Job 0 needs many replicas (high rate), job 1 few.
        let jobs = vec![
            JobWorkload::constant(40.0, 0.180, slo(), 1.0),
            JobWorkload::constant(5.0, 0.180, slo(), 1.0),
        ];
        MultiTenantProblem::new(
            jobs,
            ResourceModel::replicas(ReplicaCount::new(quota)),
            objective,
            Fidelity::Relaxed,
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_input() {
        let r = ResourceModel::replicas(ReplicaCount::new(8));
        assert!(MultiTenantProblem::new(
            vec![],
            r.clone(),
            ClusterObjective::Sum,
            Fidelity::Relaxed
        )
        .is_err());
        let no_traj = JobWorkload {
            lambda_trajectories: vec![],
            processing_time: 0.1,
            slo: slo(),
            priority: 1.0,
        };
        assert!(MultiTenantProblem::new(
            vec![no_traj],
            r,
            ClusterObjective::Sum,
            Fidelity::Relaxed
        )
        .is_err());
        // Quota 1 cannot host 2 jobs.
        let jobs = vec![
            JobWorkload::constant(1.0, 0.1, slo(), 1.0),
            JobWorkload::constant(1.0, 0.1, slo(), 1.0),
        ];
        assert!(MultiTenantProblem::new(
            jobs,
            ResourceModel::replicas(ReplicaCount::new(1)),
            ClusterObjective::Sum,
            Fidelity::Relaxed
        )
        .is_err());
    }

    #[test]
    fn expected_utility_monotone_in_replicas() {
        let p = two_job_problem(32, ClusterObjective::Sum);
        let mut prev = 0.0;
        for x in 1..=16 {
            let u = p.expected_utility(0, f64::from(x), 0.0);
            assert!(u >= prev - 1e-9, "x={x}");
            prev = u;
        }
        // Many replicas satisfy the SLO fully.
        assert!((p.expected_utility(0, 16.0, 0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn solver_finds_needy_job() {
        let p = two_job_problem(32, ClusterObjective::Sum);
        let alloc = p.solve(&Cobyla::fast(), &[1, 1]).unwrap();
        let xs = p.integerize(&alloc);
        assert!(xs[0] > xs[1], "needy job should get more replicas: {xs:?}");
        assert!(xs.iter().sum::<u32>() <= 32);
        // Both jobs should end up satisfied in a right-sized cluster.
        assert!(p.expected_utility(0, f64::from(xs[0]), 0.0) > 0.9, "{xs:?}");
        assert!(p.expected_utility(1, f64::from(xs[1]), 0.0) > 0.9, "{xs:?}");
    }

    #[test]
    fn integerize_respects_quota_exactly() {
        let p = two_job_problem(10, ClusterObjective::Sum);
        // Deliberately infeasible continuous allocation.
        let alloc = ContinuousAllocation {
            replicas: vec![9.7, 8.2],
            drop_rates: vec![0.0, 0.0],
            objective_value: 0.0,
            evals: 0,
        };
        let xs = p.integerize(&alloc);
        assert!(xs.iter().sum::<u32>() <= 10, "{xs:?}");
        assert!(xs.iter().all(|&x| x >= 1));
    }

    #[test]
    fn shrink_removes_waste() {
        let p = two_job_problem(32, ClusterObjective::Sum);
        // Grossly overprovisioned allocation: both at utility 1.
        let mut xs = vec![20u32, 10u32];
        p.shrink(&mut xs, &[0.0, 0.0]);
        let total: u32 = xs.iter().sum();
        assert!(total < 30, "shrinking should reclaim replicas: {xs:?}");
        // Utility must still be 1 for both.
        for (i, &x) in xs.iter().enumerate() {
            assert!(
                (p.expected_utility(i, f64::from(x), 0.0) - 1.0).abs() < 1e-9,
                "{xs:?}"
            );
        }
    }

    #[test]
    fn shrink_skips_unsatisfied_jobs() {
        // Tiny quota: nobody reaches utility 1; shrink must not move.
        let jobs = vec![
            JobWorkload::constant(100.0, 0.180, slo(), 1.0),
            JobWorkload::constant(100.0, 0.180, slo(), 1.0),
        ];
        let p = MultiTenantProblem::new(
            jobs,
            ResourceModel::replicas(ReplicaCount::new(4)),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap();
        let mut xs = vec![2u32, 2u32];
        let before = xs.clone();
        p.shrink(&mut xs, &[0.0, 0.0]);
        assert_eq!(xs, before);
    }

    #[test]
    fn penalty_objective_adds_drop_variables() {
        let p = two_job_problem(32, ClusterObjective::PenaltySum);
        let alloc = p.solve(&Cobyla::fast(), &[1, 1]).unwrap();
        assert_eq!(alloc.drop_rates.len(), 2);
        for d in &alloc.drop_rates {
            assert!((0.0..=1.0).contains(d));
        }
    }

    #[test]
    fn precise_fidelity_exposes_plateau() {
        // With the step utility and a badly overloaded job, local probes
        // around small x all evaluate to utility 0: a plateau.
        let jobs = vec![JobWorkload::constant(200.0, 0.180, slo(), 1.0)];
        let p = MultiTenantProblem::new(
            jobs,
            ResourceModel::replicas(ReplicaCount::new(64)),
            ClusterObjective::Sum,
            Fidelity::Precise,
        )
        .unwrap();
        let u1 = p.expected_utility(0, 1.0, 0.0);
        let u2 = p.expected_utility(0, 3.0, 0.0);
        assert_eq!(u1, 0.0);
        assert_eq!(u2, 0.0);
        // The relaxed version distinguishes them.
        let jobs = vec![JobWorkload::constant(200.0, 0.180, slo(), 1.0)];
        let p = MultiTenantProblem::new(
            jobs,
            ResourceModel::replicas(ReplicaCount::new(64)),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap();
        assert!(p.expected_utility(0, 3.0, 0.0) > p.expected_utility(0, 1.0, 0.0));
    }

    /// Replays the pre-table direct arithmetic of `expected_utility`:
    /// estimator call per (trajectory, step), same clamps, same mean.
    fn direct_expected_utility(p: &MultiTenantProblem, i: usize, x: f64, d: f64) -> f64 {
        let job = &p.jobs()[i];
        let (mut sum, mut count) = (0.0, 0usize);
        for traj in &job.lambda_trajectories {
            for &lambda in traj {
                let lambda_eff = (lambda * (1.0 - d.clamp(0.0, 1.0))).max(0.0);
                let l = match p.fidelity {
                    Fidelity::Relaxed => RelaxedLatency::default()
                        .latency_fractional(
                            job.slo.percentile,
                            job.processing_time,
                            lambda_eff,
                            x.max(1.0),
                        )
                        .unwrap_or(f64::INFINITY),
                    Fidelity::Precise => mdc::latency_percentile(
                        job.slo.percentile,
                        job.processing_time,
                        lambda_eff,
                        ReplicaCount::new(x.max(1.0).round() as u32),
                    )
                    .unwrap_or(f64::INFINITY),
                };
                sum += match p.fidelity {
                    Fidelity::Precise => step_utility(l, job.slo.latency),
                    Fidelity::Relaxed => RelaxedUtility::default().value(l, job.slo.latency),
                };
                count += 1;
            }
        }
        sum / count.max(1) as f64
    }

    fn multi_step_problem(fidelity: Fidelity) -> MultiTenantProblem {
        // Rates spanning idle, loaded, and overloaded regimes so the
        // tables carry zeros, finite entries, and (precise) infinities.
        let jobs = vec![
            JobWorkload {
                lambda_trajectories: vec![vec![0.0, 5.0, 40.0, 90.0], vec![12.5, 250.0]],
                processing_time: 0.180,
                slo: slo(),
                priority: 1.0,
            },
            JobWorkload {
                lambda_trajectories: vec![vec![3.0, 8.0, 15.0]],
                processing_time: 0.090,
                slo: slo(),
                priority: 2.0,
            },
        ];
        MultiTenantProblem::new(
            jobs,
            ResourceModel::replicas(ReplicaCount::new(24)),
            ClusterObjective::Sum,
            fidelity,
        )
        .unwrap()
    }

    #[test]
    fn cached_latency_matches_direct_path_bitwise() {
        for fidelity in [Fidelity::Relaxed, Fidelity::Precise] {
            let p = multi_step_problem(fidelity);
            for i in 0..p.n_jobs() {
                for x in [1.0, 1.5, 2.0, 3.25, 7.0, 12.5, 23.0, 24.0, 30.0] {
                    for d in [0.0, 0.25, 0.9] {
                        let cached = p.expected_utility(i, x, d);
                        let direct = direct_expected_utility(&p, i, x, d);
                        assert_eq!(
                            cached.to_bits(),
                            direct.to_bits(),
                            "{fidelity:?} i={i} x={x} d={d}: {cached} vs {direct}"
                        );
                        // Second call (memo/table hit) must be stable.
                        assert_eq!(p.expected_utility(i, x, d).to_bits(), cached.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn clone_resets_cache_but_not_results() {
        let p = multi_step_problem(Fidelity::Relaxed);
        let warm = p.expected_utility(0, 5.5, 0.1); // Populates caches.
        let q = p.clone();
        assert_eq!(q.expected_utility(0, 5.5, 0.1).to_bits(), warm.to_bits());
    }

    proptest::proptest! {
        /// The memo tables must be invisible: random rates, replica
        /// counts, and drop rates all evaluate bit-identically to the
        /// direct estimator path.
        #[test]
        fn table_path_is_bitwise_invisible(
            rates in proptest::prop::collection::vec(0.0f64..300.0, 1..6),
            x in 1.0f64..40.0,
            d in 0.0f64..1.0,
        ) {
            let jobs = vec![JobWorkload {
                lambda_trajectories: vec![rates],
                processing_time: 0.150,
                slo: slo(),
                priority: 1.0,
            }];
            let p = MultiTenantProblem::new(
                jobs,
                ResourceModel::replicas(ReplicaCount::new(40)),
                ClusterObjective::Sum,
                Fidelity::Relaxed,
            )
            .unwrap();
            let cached = p.expected_utility(0, x, d);
            let direct = direct_expected_utility(&p, 0, x, d);
            proptest::prop_assert_eq!(cached.to_bits(), direct.to_bits());
        }
    }

    #[test]
    fn upper_bound_model_overprovisions() {
        // Paper Sec. 3.3: the upper-bound estimator demands more
        // replicas than M/D/c for the same utility.
        let mk = |model| {
            let jobs = vec![JobWorkload::constant(
                40.0,
                0.150,
                Slo {
                    latency: 0.6,
                    percentile: 0.9999,
                },
                1.0,
            )];
            MultiTenantProblem::new(
                jobs,
                ResourceModel::replicas(ReplicaCount::new(32)),
                ClusterObjective::Sum,
                Fidelity::Relaxed,
            )
            .unwrap()
            .with_latency_model(model)
        };
        let mdc_p = mk(LatencyModel::MDc);
        let ub_p = mk(LatencyModel::UpperBound);
        let first_full = |p: &MultiTenantProblem| {
            (1..=32)
                .find(|&x| p.expected_utility(0, f64::from(x), 0.0) > 1.0 - 1e-9)
                .unwrap_or(33)
        };
        assert!(first_full(&mdc_p) < first_full(&ub_p));
    }
}
