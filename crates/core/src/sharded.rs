//! Sharded incremental solving: the scale path past the hierarchical
//! grouped solve (ROADMAP item 1, "millions of users").
//!
//! The grouped solve of Sec. 3.4 collapses the *variable count* but
//! still evaluates every job's utility inside the solver loop and still
//! re-solves the whole cluster every long-term round. At thousands of
//! jobs both costs dominate. The sharded path splits them:
//!
//! 1. **Partition** — jobs are assigned to shards by a deterministic
//!    longest-processing-time (LPT) greedy over each job's estimated
//!    M/D/c replica *need*: sort by need descending, place each job on
//!    the least-loaded shard. No RNG, balanced by construction, and
//!    stable for a fixed job set.
//! 2. **Top-level quota split** — one cheap `S`-variable solve over
//!    per-shard *pseudo-jobs* (aggregated rate, need-weighted
//!    processing time and SLO, summed priority) decides each shard's
//!    replica budget. Budgets are integerized by largest remainder with
//!    a one-replica-per-member floor, summing exactly to the quota.
//! 3. **Independent shard solves** — each shard solves its members
//!    against its own budget (flat COBYLA below
//!    [`ShardConfig::flat_threshold`] members, the grouped solve above
//!    it), on `std::thread::scope` workers. Results are merged in shard
//!    index order, so the output is byte-identical regardless of thread
//!    count or interleaving.
//! 4. **Incremental re-solves** — each solved job's workload signature
//!    (mean predicted rate, processing time, SLO, priority) is cached;
//!    a shard re-enters the solver only when a member's rate or
//!    processing time moved beyond [`ShardConfig::dirty_epsilon`]
//!    (relative) or its SLO/priority changed at all, or when the new
//!    budget no longer covers the cached allocation. Clean shards reuse
//!    their cached decisions, so a warm round's cost is the top-level
//!    split plus only the shards that actually changed.

use crate::error::Result;
use crate::hierarchical::{replica_need, solve_hierarchical};
use crate::objective::ClusterObjective;
use crate::opt::{Fidelity, JobWorkload, MultiTenantProblem};
use crate::rng::SplitMix64;
use crate::types::{DesiredState, JobDecision, JobId, ResourceModel, Slo};
use crate::units::ReplicaCount;
use faro_solver::Solver;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How the long-term solve is organized (`FaroConfig::solve_plan`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolvePlan {
    /// One cluster-wide solve per round (flat below the hierarchical
    /// threshold, grouped above it) — the paper-faithful default.
    Global,
    /// Sharded incremental solve with parallel shard workers.
    Sharded(ShardConfig),
}

/// Configuration for the sharded solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// Shard count (clamped to the job count).
    pub shards: usize,
    /// Worker threads for shard solves (0 = one per available core).
    /// The merged result is identical for every value.
    pub parallelism: usize,
    /// Relative change in a job's mean predicted rate or processing
    /// time that marks its shard dirty. SLO or priority changes always
    /// do.
    pub dirty_epsilon: f64,
    /// Member count above which a shard solves with the grouped
    /// (hierarchical) formulation instead of flat COBYLA.
    pub flat_threshold: usize,
    /// Group count for within-shard grouped solves.
    pub groups: usize,
    /// Stage-3 shrinking on flat within-shard solves.
    pub use_shrinking: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 16,
            parallelism: 0,
            dirty_epsilon: 0.05,
            flat_threshold: 50,
            groups: 10,
            use_shrinking: true,
        }
    }
}

impl ShardConfig {
    /// A config with the given shard count and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }
}

/// What one sharded solve round did — the telemetry record behind the
/// `ShardSolve` event and the per-shard solve spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSolveRecord {
    /// Total shards in the partition.
    pub shards: u32,
    /// Shards that entered the solver this round.
    pub solved: u32,
    /// Clean shards that reused their cached allocation.
    pub skipped: u32,
    /// Jobs served from a cached shard allocation.
    pub cache_hit_jobs: u32,
    /// Solver objective evaluations across solved shards.
    pub evals: u64,
    /// Evaluations spent on the top-level quota split (0 when the
    /// round was fully clean and the split was skipped).
    pub split_evals: u64,
}

/// One solved shard's telemetry span (work = solver evaluations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpan {
    /// Shard index.
    pub shard: u32,
    /// Objective evaluations the shard's solve consumed.
    pub evals: u64,
}

/// Result of a sharded solve round.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedAllocation {
    /// Integer replica counts per job.
    pub replicas: Vec<u32>,
    /// Drop rates per job.
    pub drop_rates: Vec<f64>,
    /// What the round did (solved/skipped shards, evals, cache hits).
    pub record: ShardSolveRecord,
    /// Per-solved-shard spans, ascending shard index.
    pub shard_spans: Vec<ShardSpan>,
}

impl ShardedAllocation {
    /// The allocation as a typed [`DesiredState`].
    pub fn desired_state(&self) -> DesiredState {
        self.replicas
            .iter()
            .zip(self.drop_rates.iter())
            .enumerate()
            .map(|(j, (&r, &d))| (JobId::new(j), JobDecision::replicas(r).with_drop_rate(d)))
            .collect()
    }
}

/// The workload facts a shard solve depends on; equality within epsilon
/// means the cached allocation is still valid.
#[derive(Debug, Clone, Copy, PartialEq)]
struct JobSignature {
    mean_rate: f64,
    processing_time: f64,
    slo: Slo,
    priority: f64,
}

impl JobSignature {
    fn of(job: &JobWorkload) -> Self {
        let total: f64 = job.lambda_trajectories.iter().flat_map(|t| t.iter()).sum();
        let count = job
            .lambda_trajectories
            .iter()
            .map(Vec::len)
            .sum::<usize>()
            .max(1);
        Self {
            mean_rate: total / count as f64,
            processing_time: job.processing_time,
            slo: job.slo,
            priority: job.priority,
        }
    }

    /// Whether moving from `self` to `new` invalidates a cached solve.
    fn dirty_against(&self, new: &JobSignature, epsilon: f64) -> bool {
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-9);
        rel(new.mean_rate, self.mean_rate) > epsilon
            || rel(new.processing_time, self.processing_time) > epsilon
            || new.slo != self.slo
            || new.priority != self.priority
    }
}

/// A shard's cached solve: member decisions in member-list order.
#[derive(Debug, Clone)]
struct ShardCache {
    replicas: Vec<u32>,
    drops: Vec<f64>,
    /// Total replicas the cached allocation uses (re-solve trigger when
    /// the new budget dips below it).
    used: u32,
}

/// One shard solve's raw output.
struct ShardResult {
    replicas: Vec<u32>,
    drops: Vec<f64>,
    evals: u64,
}

/// Deterministic LPT partition: jobs sorted by `need` descending (ties
/// by index), each placed on the least-loaded shard (ties by shard
/// index). Every shard is non-empty when `needs.len() >= shards`.
pub fn assign_shards(needs: &[f64], shards: usize) -> Vec<usize> {
    let s = shards.max(1).min(needs.len().max(1));
    let mut order: Vec<usize> = (0..needs.len()).collect();
    order.sort_by(|&a, &b| {
        needs[b]
            .partial_cmp(&needs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut load = vec![0.0f64; s];
    let mut assignment = vec![0usize; needs.len()];
    for &j in &order {
        let mut best = 0usize;
        for t in 1..s {
            if load[t] < load[best] {
                best = t;
            }
        }
        assignment[j] = best;
        // A zero-need job must still occupy its shard, or ties would
        // pile every light job onto shard 0.
        load[best] += needs[j].max(1e-12);
    }
    assignment
}

/// Largest-remainder split of `quota` across shards: every shard gets
/// at least its floor (one replica per member); the surplus goes
/// proportionally to the continuous solve's above-floor desires, with
/// fractional-part ties broken by shard index.
fn split_budgets(cont: &[f64], floors: &[u32], quota: u32) -> Vec<u32> {
    let s = cont.len();
    let floor_sum: u32 = floors.iter().sum();
    let extra = quota.saturating_sub(floor_sum);
    let desire: Vec<f64> = cont
        .iter()
        .zip(floors)
        .map(|(&c, &f)| (c - f64::from(f)).max(0.0))
        .collect();
    let desire_sum: f64 = desire.iter().sum();
    let weights: Vec<f64> = if desire_sum > 1e-9 {
        desire
    } else {
        floors.iter().map(|&f| f64::from(f).max(1.0)).collect()
    };
    let wsum: f64 = weights.iter().sum::<f64>().max(1e-9);
    let raw: Vec<f64> = weights
        .iter()
        .map(|w| f64::from(extra) * w / wsum)
        .collect();
    let mut extras: Vec<u32> = raw.iter().map(|r| r.floor() as u32).collect();
    let mut assigned: u32 = extras.iter().sum();
    let mut order: Vec<usize> = (0..s).collect();
    order.sort_by(|&a, &b| {
        let fa = raw[a] - raw[a].floor();
        let fb = raw[b] - raw[b].floor();
        fb.partial_cmp(&fa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut i = 0usize;
    while assigned < extra {
        extras[order[i % s]] += 1;
        assigned += 1;
        i += 1;
    }
    floors.iter().zip(&extras).map(|(&f, &e)| f + e).collect()
}

/// Everything a shard worker needs, shared read-only across threads.
struct SolveCtx<'a> {
    jobs: &'a [JobWorkload],
    resources: ResourceModel,
    objective: ClusterObjective,
    fidelity: Fidelity,
    solver: &'a (dyn Solver + Sync),
    current: &'a [u32],
    cfg: ShardConfig,
    seed: u64,
}

/// Scales a cluster's capacity down to a shard's replica budget.
///
/// Homogeneous clusters get exact per-replica scaling (identical to the
/// pre-class arithmetic). Classed clusters scale every capacity
/// dimension by the budget's share of the total replica quota, so each
/// shard sees the cluster's GPU:CPU mix in proportion to its budget and
/// class costs stay representable.
fn sub_resources_for_budget(resources: &ResourceModel, budget: u32) -> ResourceModel {
    if resources.has_classes() {
        let total = resources.replica_quota().get().max(1);
        let frac = f64::from(budget) / f64::from(total);
        return ResourceModel {
            cluster_cpu: resources.cluster_cpu * frac,
            cluster_gpu: resources.cluster_gpu * frac,
            cluster_mem: resources.cluster_mem * frac,
            ..resources.clone()
        };
    }
    ResourceModel {
        cluster_cpu: f64::from(budget) * resources.cpu_per_replica,
        cluster_mem: f64::from(budget) * resources.mem_per_replica,
        ..resources.clone()
    }
}

/// Solves one shard against its budget: flat COBYLA (+ integerize +
/// optional shrink) for small member lists, the grouped solve above
/// [`ShardConfig::flat_threshold`], with a per-shard child seed.
fn solve_shard(
    ctx: &SolveCtx<'_>,
    members: &[usize],
    budget: u32,
    shard: usize,
) -> Result<ShardResult> {
    let sub_jobs: Vec<JobWorkload> = members.iter().map(|&i| ctx.jobs[i].clone()).collect();
    let sub_current: Vec<u32> = members
        .iter()
        .map(|&i| ctx.current.get(i).copied().unwrap_or(1))
        .collect();
    let sub_resources = sub_resources_for_budget(&ctx.resources, budget);
    if members.len() > ctx.cfg.flat_threshold {
        let out = solve_hierarchical(
            &sub_jobs,
            sub_resources,
            ctx.objective,
            ctx.fidelity,
            ctx.solver,
            &sub_current,
            ctx.cfg.groups,
            SplitMix64::child_seed(ctx.seed, shard as u64),
        )?;
        Ok(ShardResult {
            replicas: out.replicas,
            drops: out.drop_rates,
            evals: out.evals as u64,
        })
    } else {
        let problem =
            MultiTenantProblem::new(sub_jobs, sub_resources, ctx.objective, ctx.fidelity)?;
        let alloc = problem.solve(ctx.solver, &sub_current)?;
        let mut xs = problem.integerize(&alloc);
        if ctx.cfg.use_shrinking {
            problem.shrink(&mut xs, &alloc.drop_rates);
        }
        Ok(ShardResult {
            replicas: xs,
            drops: alloc.drop_rates,
            evals: alloc.evals as u64,
        })
    }
}

/// Runs the dirty-shard solves on scoped worker threads. `tasks` holds
/// `(slot, shard, budget)` triples; the returned vector is indexed by
/// `slot`, so the caller's merge order never depends on thread
/// interleaving — only the *schedule* is racy, never the result.
fn run_shard_solves(
    ctx: &SolveCtx<'_>,
    members: &[Vec<usize>],
    tasks: &[(usize, u32)],
    threads: usize,
) -> Vec<Option<Result<ShardResult>>> {
    let mut results: Vec<Option<Result<ShardResult>>> = Vec::new();
    results.resize_with(tasks.len(), || None);
    if threads <= 1 || tasks.len() <= 1 {
        for (slot, &(shard, budget)) in tasks.iter().enumerate() {
            results[slot] = Some(solve_shard(ctx, &members[shard], budget, shard));
        }
        return results;
    }
    let cursor = AtomicUsize::new(0);
    let shared = Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(tasks.len()) {
            scope.spawn(|| loop {
                let slot = cursor.fetch_add(1, Ordering::Relaxed);
                if slot >= tasks.len() {
                    break;
                }
                let (shard, budget) = tasks[slot];
                let out = solve_shard(ctx, &members[shard], budget, shard);
                shared.lock().expect("shard results")[slot] = Some(out);
            });
        }
    });
    results
}

/// The sharded incremental solver. Owns the partition, the per-job
/// workload signatures, and the per-shard allocation caches between
/// rounds; [`ShardedSolver::solve`] is one long-term round.
#[derive(Debug)]
pub struct ShardedSolver {
    cfg: ShardConfig,
    seed: u64,
    /// Shard member lists (job indices, ascending within a shard).
    members: Vec<Vec<usize>>,
    /// Signatures backing the cached allocations (`None` = never
    /// solved).
    sigs: Vec<Option<JobSignature>>,
    /// Cached per-shard allocations.
    caches: Vec<Option<ShardCache>>,
    /// Budgets from the last top-level split.
    budgets: Vec<u32>,
    /// Job count and quota the partition was built for.
    n_jobs: usize,
    last_quota: u32,
}

impl ShardedSolver {
    /// A solver with no cached state; the first round solves every
    /// shard.
    pub fn new(cfg: ShardConfig, seed: u64) -> Self {
        Self {
            cfg,
            seed,
            members: Vec::new(),
            sigs: Vec::new(),
            caches: Vec::new(),
            budgets: Vec::new(),
            n_jobs: 0,
            last_quota: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// Drops all cached state; the next round re-partitions and solves
    /// every shard.
    pub fn invalidate(&mut self) {
        self.members.clear();
        self.sigs.clear();
        self.caches.clear();
        self.budgets.clear();
        self.n_jobs = 0;
        self.last_quota = 0;
    }

    /// One sharded long-term round: partition (if stale), dirty-check,
    /// top-level split, parallel dirty-shard solves, deterministic
    /// merge.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction and solver failures; cached
    /// state is left untouched so the next round retries cleanly.
    pub fn solve(
        &mut self,
        jobs: &[JobWorkload],
        resources: ResourceModel,
        objective: ClusterObjective,
        fidelity: Fidelity,
        solver: &(dyn Solver + Sync),
        current: &[u32],
    ) -> Result<ShardedAllocation> {
        let n = jobs.len();
        let quota = resources.replica_quota();
        // Delegate validation (empty set, quota floor) to the problem
        // constructor the shards use anyway.
        if n == 0 || (quota.get() as usize) < n {
            MultiTenantProblem::new(jobs.to_vec(), resources.clone(), objective, fidelity)?;
        }

        let new_sigs: Vec<JobSignature> = jobs.iter().map(JobSignature::of).collect();
        if n != self.n_jobs || quota.get() != self.last_quota {
            let needs: Vec<f64> = jobs.iter().map(|j| replica_need(j, quota)).collect();
            let assignment = assign_shards(&needs, self.cfg.shards);
            let s = assignment.iter().copied().max().map_or(1, |m| m + 1);
            self.members = vec![Vec::new(); s];
            for (job, &shard) in assignment.iter().enumerate() {
                self.members[shard].push(job);
            }
            self.sigs = vec![None; n];
            self.caches = vec![None; s];
            self.budgets = Vec::new();
            self.n_jobs = n;
            self.last_quota = quota.get();
        }
        let s = self.members.len();

        // A shard is dirty when any member's signature moved.
        let mut dirty = vec![false; s];
        for (shard, members) in self.members.iter().enumerate() {
            dirty[shard] = members.iter().any(|&j| {
                self.sigs[j]
                    .as_ref()
                    .is_none_or(|old| old.dirty_against(&new_sigs[j], self.cfg.dirty_epsilon))
            });
        }
        let any_dirty = dirty.iter().any(|&d| d) || self.budgets.len() != s;

        // Top-level quota split: one S-variable solve over per-shard
        // pseudo-jobs. Skipped on fully clean rounds — the previous
        // budgets still describe the cluster within epsilon.
        let mut split_evals = 0u64;
        if any_dirty {
            let floors: Vec<u32> = self.members.iter().map(|m| m.len() as u32).collect();
            let (pseudo, x0) = self.pseudo_jobs(&new_sigs, quota);
            let cont: Vec<f64> = if s == 1 {
                vec![quota.as_f64()]
            } else {
                let split_problem = MultiTenantProblem::new(
                    pseudo,
                    resources.clone(),
                    objective.drop_free(),
                    fidelity,
                )?;
                let split = split_problem.solve(solver, &x0)?;
                split_evals = split.evals as u64;
                split.replicas
            };
            self.budgets = split_budgets(&cont, &floors, quota.get());
        }

        // A clean shard still re-solves when its new budget no longer
        // covers the cached allocation (the merged total must respect
        // the quota).
        let tasks: Vec<(usize, u32)> = (0..s)
            .filter(|&shard| {
                dirty[shard]
                    || match &self.caches[shard] {
                        Some(c) => c.used > self.budgets[shard],
                        None => true,
                    }
            })
            .map(|shard| (shard, self.budgets[shard]))
            .collect();

        let threads = if self.cfg.parallelism == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.cfg.parallelism
        };
        let ctx = SolveCtx {
            jobs,
            resources,
            objective,
            fidelity,
            solver,
            current,
            cfg: self.cfg,
            seed: self.seed,
        };
        let results = run_shard_solves(&ctx, &self.members, &tasks, threads);

        // Merge in shard-index order; propagate the first failure (by
        // task slot, i.e. ascending shard index) without touching the
        // caches.
        let mut solved_new: Vec<(usize, ShardResult)> = Vec::with_capacity(tasks.len());
        for (slot, out) in results.into_iter().enumerate() {
            let shard = tasks[slot].0;
            match out.expect("every task slot is filled") {
                Ok(r) => solved_new.push((shard, r)),
                Err(e) => return Err(e),
            }
        }

        let mut record = ShardSolveRecord {
            shards: s as u32,
            solved: solved_new.len() as u32,
            skipped: (s - solved_new.len()) as u32,
            ..ShardSolveRecord::default()
        };
        let mut spans = Vec::with_capacity(solved_new.len());
        for (shard, r) in &solved_new {
            record.evals += r.evals;
            spans.push(ShardSpan {
                shard: *shard as u32,
                evals: r.evals,
            });
        }
        record.split_evals = split_evals;

        // Commit: caches and signatures update only for solved shards.
        for (shard, r) in solved_new {
            let used = r.replicas.iter().sum();
            for &j in &self.members[shard] {
                self.sigs[j] = Some(new_sigs[j]);
            }
            self.caches[shard] = Some(ShardCache {
                replicas: r.replicas,
                drops: r.drops,
                used,
            });
        }

        let mut replicas = vec![1u32; n];
        let mut drop_rates = vec![0.0f64; n];
        for (shard, members) in self.members.iter().enumerate() {
            let cache = self.caches[shard].as_ref().expect("every shard solved");
            if !spans.iter().any(|sp| sp.shard == shard as u32) {
                record.cache_hit_jobs += members.len() as u32;
            }
            for (pos, &j) in members.iter().enumerate() {
                replicas[j] = cache.replicas[pos].max(1);
                drop_rates[j] = cache.drops[pos];
            }
        }
        Ok(ShardedAllocation {
            replicas,
            drop_rates,
            record,
            shard_spans: spans,
        })
    }

    /// Per-shard pseudo-jobs for the top-level split: aggregated mean
    /// rate (one-step constant trajectory), need-weighted processing
    /// time and SLO, summed priority. Also returns the split's starting
    /// point — the previous budgets when available, else each shard's
    /// offered-load share of the quota. COBYLA only refines locally, so
    /// a floor-level start would leave light shards at their floor and
    /// read as zero desire downstream.
    fn pseudo_jobs(
        &self,
        sigs: &[JobSignature],
        quota: ReplicaCount,
    ) -> (Vec<JobWorkload>, Vec<u32>) {
        let mut pseudo = Vec::with_capacity(self.members.len());
        let mut shard_load = Vec::with_capacity(self.members.len());
        for members in self.members.iter() {
            let mut rate = 0.0;
            let mut weight = 0.0;
            let mut ptime = 0.0;
            let mut slo_latency = 0.0;
            let mut slo_percentile = 0.0;
            let mut priority = 0.0;
            for &j in members {
                let sig = &sigs[j];
                // Weight by a cheap proxy for need (offered load): the
                // exact M/D/c need was already spent on partitioning.
                let w = (sig.mean_rate * sig.processing_time).max(1e-3);
                rate += sig.mean_rate;
                ptime += w * sig.processing_time;
                slo_latency += w * sig.slo.latency;
                slo_percentile += w * sig.slo.percentile;
                priority += sig.priority;
                weight += w;
            }
            let w = weight.max(1e-9);
            pseudo.push(JobWorkload {
                lambda_trajectories: vec![vec![rate]],
                processing_time: (ptime / w).max(1e-6),
                slo: Slo {
                    latency: (slo_latency / w).max(1e-6),
                    percentile: (slo_percentile / w).clamp(0.5, 0.999_999),
                },
                priority,
            });
            shard_load.push(weight.max(1e-9));
        }
        // faro-lint: allow(float-order-determinism): shard_load is a Vec filled in shard-index order; the reduction order is fixed for any thread count
        let total_load: f64 = shard_load.iter().sum();
        let x0 = self
            .members
            .iter()
            .enumerate()
            .map(|(shard, members)| match self.budgets.get(shard) {
                Some(&b) => b.min(quota.get()),
                None => {
                    let share = quota.as_f64() * shard_load[shard] / total_load.max(1e-9);
                    (share.round() as u32)
                        .max(members.len() as u32)
                        .min(quota.get())
                }
            })
            .collect();
        (pseudo, x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faro_solver::Cobyla;

    fn job(lambda: f64) -> JobWorkload {
        JobWorkload::constant(lambda, 0.180, Slo::paper_default(), 1.0)
    }

    fn jobs(n: usize) -> Vec<JobWorkload> {
        (0..n).map(|i| job(3.0 + (i % 7) as f64 * 2.5)).collect()
    }

    #[test]
    fn lpt_assignment_is_balanced_and_total() {
        let needs: Vec<f64> = (0..20).map(|i| 1.0 + f64::from(i)).collect();
        let a = assign_shards(&needs, 4);
        assert_eq!(a.len(), 20);
        let mut load = vec![0.0; 4];
        for (j, &s) in a.iter().enumerate() {
            load[s] += needs[j];
        }
        let max = load.iter().cloned().fold(0.0, f64::max);
        let min = load.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > 0.0, "no empty shard: {load:?}");
        assert!(max / min < 1.5, "LPT keeps shards balanced: {load:?}");
        assert_eq!(a, assign_shards(&needs, 4), "deterministic");
    }

    #[test]
    fn split_budgets_hits_quota_exactly_and_respects_floors() {
        let cont = vec![10.3, 2.1, 30.6];
        let floors = vec![4, 4, 4];
        let b = split_budgets(&cont, &floors, 40);
        assert_eq!(b.iter().sum::<u32>(), 40);
        assert!(b.iter().zip(&floors).all(|(&x, &f)| x >= f), "{b:?}");
        // The big desire gets the big budget.
        assert!(b[2] > b[0] && b[0] > b[1], "{b:?}");
    }

    #[test]
    fn split_budgets_with_zero_desire_falls_back_to_floors() {
        let b = split_budgets(&[1.0, 1.0], &[2, 3], 9);
        assert_eq!(b.iter().sum::<u32>(), 9);
        assert!(b[0] >= 2 && b[1] >= 3, "{b:?}");
    }

    #[test]
    fn first_round_solves_every_shard() {
        let js = jobs(12);
        let mut solver = ShardedSolver::new(ShardConfig::with_shards(3), 7);
        let out = solver
            .solve(
                &js,
                ResourceModel::replicas(ReplicaCount::new(48)),
                ClusterObjective::Sum,
                Fidelity::Relaxed,
                &Cobyla::fast(),
                &[1; 12],
            )
            .unwrap();
        assert_eq!(out.record.shards, 3);
        assert_eq!(out.record.solved, 3);
        assert_eq!(out.record.skipped, 0);
        assert_eq!(out.record.cache_hit_jobs, 0);
        assert!(out.record.evals > 0);
        assert!(out.record.split_evals > 0);
        assert_eq!(out.shard_spans.len(), 3);
        assert!(out.replicas.iter().all(|&r| r >= 1));
        assert!(out.replicas.iter().sum::<u32>() <= 48);
    }

    #[test]
    fn clean_round_solves_zero_shards_and_returns_cache_unchanged() {
        let js = jobs(12);
        let resources = ResourceModel::replicas(ReplicaCount::new(48));
        let mut solver = ShardedSolver::new(ShardConfig::with_shards(3), 7);
        let cold = solver
            .solve(
                &js,
                resources.clone(),
                ClusterObjective::Sum,
                Fidelity::Relaxed,
                &Cobyla::fast(),
                &[1; 12],
            )
            .unwrap();
        let warm = solver
            .solve(
                &js,
                resources.clone(),
                ClusterObjective::Sum,
                Fidelity::Relaxed,
                &Cobyla::fast(),
                &cold.replicas,
            )
            .unwrap();
        assert_eq!(warm.record.solved, 0);
        assert_eq!(warm.record.skipped, 3);
        assert_eq!(warm.record.cache_hit_jobs, 12);
        assert_eq!(warm.record.evals, 0);
        assert_eq!(warm.record.split_evals, 0, "clean round skips the split");
        assert!(warm.shard_spans.is_empty());
        assert_eq!(warm.replicas, cold.replicas);
        assert_eq!(warm.drop_rates, cold.drop_rates);
        assert_eq!(warm.desired_state(), cold.desired_state());
    }

    #[test]
    fn sub_epsilon_drift_stays_clean_and_beyond_epsilon_resolves() {
        let js = jobs(12);
        let resources = ResourceModel::replicas(ReplicaCount::new(48));
        let mut solver = ShardedSolver::new(ShardConfig::with_shards(3), 7);
        let solve = |solver: &mut ShardedSolver, js: &[JobWorkload]| {
            solver
                .solve(
                    js,
                    resources.clone(),
                    ClusterObjective::Sum,
                    Fidelity::Relaxed,
                    &Cobyla::fast(),
                    &[1; 12],
                )
                .unwrap()
        };
        solve(&mut solver, &js);
        // 1% drift on one job: inside the 5% epsilon, fully clean.
        let mut drifted = js.clone();
        drifted[0].lambda_trajectories[0][0] *= 1.01;
        let warm = solve(&mut solver, &drifted);
        assert_eq!(warm.record.solved, 0, "sub-epsilon drift is clean");
        // 30% movement on the same job: exactly its shard re-solves.
        let mut moved = js.clone();
        moved[0].lambda_trajectories[0][0] *= 1.3;
        let re = solve(&mut solver, &moved);
        assert_eq!(re.record.solved, 1, "only the dirty shard re-solved");
        assert_eq!(re.record.skipped, 2);
        assert!(re.record.cache_hit_jobs >= 6);
    }

    #[test]
    fn slo_change_always_dirties_its_shard() {
        let js = jobs(8);
        let resources = ResourceModel::replicas(ReplicaCount::new(32));
        let mut solver = ShardedSolver::new(ShardConfig::with_shards(2), 1);
        let solve = |solver: &mut ShardedSolver, js: &[JobWorkload]| {
            solver
                .solve(
                    js,
                    resources.clone(),
                    ClusterObjective::Sum,
                    Fidelity::Relaxed,
                    &Cobyla::fast(),
                    &[1; 8],
                )
                .unwrap()
        };
        solve(&mut solver, &js);
        let mut changed = js.clone();
        changed[3].slo.latency *= 0.5;
        let out = solve(&mut solver, &changed);
        assert_eq!(out.record.solved, 1);
    }

    #[test]
    fn quota_change_invalidates_the_partition() {
        let js = jobs(8);
        let mut solver = ShardedSolver::new(ShardConfig::with_shards(2), 1);
        let solve = |solver: &mut ShardedSolver, quota: u32| {
            solver
                .solve(
                    &js,
                    ResourceModel::replicas(ReplicaCount::new(quota)),
                    ClusterObjective::Sum,
                    Fidelity::Relaxed,
                    &Cobyla::fast(),
                    &[1; 8],
                )
                .unwrap()
        };
        solve(&mut solver, 32);
        let out = solve(&mut solver, 24);
        assert_eq!(out.record.solved, 2, "quota change re-solves everything");
        assert!(out.replicas.iter().sum::<u32>() <= 24);
    }

    #[test]
    fn parallel_and_sequential_merges_are_bit_identical() {
        let js = jobs(24);
        let resources = ResourceModel::replicas(ReplicaCount::new(96));
        let run = |parallelism: usize| {
            let cfg = ShardConfig {
                shards: 6,
                parallelism,
                ..ShardConfig::default()
            };
            let mut solver = ShardedSolver::new(cfg, 11);
            solver
                .solve(
                    &js,
                    resources.clone(),
                    ClusterObjective::Sum,
                    Fidelity::Relaxed,
                    &Cobyla::fast(),
                    &[1; 24],
                )
                .unwrap()
        };
        let seq = run(1);
        let par = run(8);
        assert_eq!(seq.replicas, par.replicas);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&seq.drop_rates), bits(&par.drop_rates));
        assert_eq!(seq.record, par.record);
        assert_eq!(seq.shard_spans, par.shard_spans);
    }

    #[test]
    fn drop_objectives_produce_drop_rates_per_job() {
        let js = jobs(8);
        let mut solver = ShardedSolver::new(ShardConfig::with_shards(2), 5);
        let out = solver
            .solve(
                &js,
                ResourceModel::replicas(ReplicaCount::new(16)),
                ClusterObjective::PenaltySum,
                Fidelity::Relaxed,
                &Cobyla::fast(),
                &[1; 8],
            )
            .unwrap();
        assert_eq!(out.drop_rates.len(), 8);
        assert!(out.drop_rates.iter().all(|d| (0.0..=1.0).contains(d)));
    }
}
