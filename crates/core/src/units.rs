//! Typed time and rate quantities shared by every Faro layer.
//!
//! The paper's inputs mix units freely — traces are requests **per
//! minute**, service times are **milliseconds**, SLOs are **seconds** —
//! and a raw `f64` cannot tell them apart. These newtypes give each
//! quantity a distinct type so unit mix-ups are compile errors, and give
//! every conversion one audited home. The `raw-time-arith` rule of
//! `cargo xtask lint` rejects new raw-`f64` time/rate fields outside
//! this module.
//!
//! All conversions are chosen to be *bit-preserving* with respect to the
//! arithmetic the simulator previously performed on raw `f64`s:
//!
//! - [`SimTimeMs`] stores whole milliseconds; the simulator's microsecond
//!   event clock only surfaces millisecond-aligned instants, and for
//!   `t = 1000 * m` microseconds the IEEE divisions `m / 1e3` and
//!   `t / 1e6` produce identical bits.
//! - [`RatePerMin::per_sec`] divides by `60.0`, replicating the
//!   `rate / 60.0` expression used throughout the policies.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use serde::{Deserialize, Serialize};

pub use faro_queueing::ReplicaCount;

/// An absolute simulation instant, stored as whole milliseconds.
///
/// Serialized as `f64` seconds so snapshots and reports keep the exact
/// JSON representation they had when `now` was a raw `f64`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTimeMs(i64);

impl SimTimeMs {
    /// The epoch (`t = 0`).
    pub const ZERO: Self = Self(0);
    /// The distant past: earlier than any representable instant. Used as
    /// a "never happened" sentinel (subtraction saturates, so
    /// `now - MIN` is a huge duration, never an overflow).
    pub const MIN: Self = Self(i64::MIN);
    /// The distant future.
    pub const MAX: Self = Self(i64::MAX);

    /// An instant from whole milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Self(ms)
    }

    /// An instant from the simulator's microsecond event clock.
    ///
    /// Rounds to the nearest millisecond; the event loop only observes
    /// policy ticks, which are millisecond-aligned.
    pub const fn from_micros(us: u64) -> Self {
        // Round half up: (us + 500) / 1000 without overflow for any
        // realistic simulation horizon.
        Self(((us + 500) / 1000) as i64)
    }

    /// An instant from `f64` seconds, rounded to the nearest millisecond.
    ///
    /// Non-finite inputs map to the matching sentinel ([`SimTimeMs::MIN`]
    /// / [`SimTimeMs::MAX`]) rather than a bogus instant.
    pub fn from_secs(secs: f64) -> Self {
        if secs.is_nan() {
            return Self::ZERO;
        }
        let ms = (secs * 1e3).round();
        if ms <= i64::MIN as f64 {
            Self::MIN
        } else if ms >= i64::MAX as f64 {
            Self::MAX
        } else {
            Self(ms as i64)
        }
    }

    /// Whole milliseconds since the epoch.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Seconds since the epoch, as the policies consume time.
    ///
    /// For a millisecond count `m`, `m as f64 / 1e3` is the correctly
    /// rounded IEEE result — identical bits to the `micros / 1e6`
    /// seconds value the simulator previously exposed.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Checked duration since `earlier` (`None` on overflow).
    pub const fn checked_duration_since(self, earlier: Self) -> Option<DurationMs> {
        match self.0.checked_sub(earlier.0) {
            Some(ms) => Some(DurationMs(ms)),
            None => None,
        }
    }

    /// Saturating duration since `earlier`.
    pub const fn saturating_duration_since(self, earlier: Self) -> DurationMs {
        DurationMs(self.0.saturating_sub(earlier.0))
    }
}

impl Sub for SimTimeMs {
    type Output = DurationMs;

    fn sub(self, rhs: Self) -> DurationMs {
        self.saturating_duration_since(rhs)
    }
}

impl Add<DurationMs> for SimTimeMs {
    type Output = Self;

    fn add(self, rhs: DurationMs) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<DurationMs> for SimTimeMs {
    fn add_assign(&mut self, rhs: DurationMs) {
        *self = *self + rhs;
    }
}

impl Sub<DurationMs> for SimTimeMs {
    type Output = Self;

    fn sub(self, rhs: DurationMs) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTimeMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.as_secs())
    }
}

impl Serialize for SimTimeMs {
    /// Writes `f64` seconds, the exact wire value `now` had as a raw
    /// `f64`.
    fn serialize_json(&self, out: &mut String) {
        self.as_secs().serialize_json(out);
    }
}

impl Deserialize for SimTimeMs {}

/// A span between two [`SimTimeMs`] instants, in whole milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DurationMs(i64);

impl DurationMs {
    /// The empty span.
    pub const ZERO: Self = Self(0);

    /// A span from whole milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Self(ms)
    }

    /// A span from `f64` seconds, rounded to the nearest millisecond.
    pub fn from_secs(secs: f64) -> Self {
        Self(SimTimeMs::from_secs(secs).as_millis())
    }

    /// Whole milliseconds.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// The span in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Whether the span is negative (the "since" instant was later).
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl Add for DurationMs {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }
}

impl Sub for DurationMs {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for DurationMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.as_secs())
    }
}

impl Serialize for DurationMs {
    /// Writes `f64` seconds, matching the wire format of every other
    /// duration the stack serializes (cold starts, intervals).
    fn serialize_json(&self, out: &mut String) {
        self.as_secs().serialize_json(out);
    }
}

impl Deserialize for DurationMs {}

/// An arrival rate in requests **per minute** — the unit of the paper's
/// traces and of every `arrival_rate_history` sample.
///
/// The wrapped value may be NaN when a fault-injection campaign corrupts
/// an observation (PR 1); [`RatePerMin::is_corrupt`] and the repair path
/// in `predictor::sanitize_history` handle that case explicitly.
///
/// Serializes transparently as the raw `f64`, so histories keep their
/// exact JSON representation.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct RatePerMin(f64);

impl Serialize for RatePerMin {
    /// Writes the raw `f64` (transparent), so histories keep their
    /// exact JSON representation.
    fn serialize_json(&self, out: &mut String) {
        self.0.serialize_json(out);
    }
}

impl Deserialize for RatePerMin {}

impl RatePerMin {
    /// Zero requests per minute.
    pub const ZERO: Self = Self(0.0);
    /// The corrupt-observation marker used by fault injection.
    pub const NAN: Self = Self(f64::NAN);

    /// A rate from raw requests-per-minute.
    pub const fn new(per_min: f64) -> Self {
        Self(per_min)
    }

    /// The raw requests-per-minute value.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The rate in requests per second (`per_min / 60.0`, the exact
    /// expression the policies previously wrote inline).
    pub fn per_sec(self) -> f64 {
        self.0 / 60.0
    }

    /// Whether the sample is unusable (NaN, infinite, or negative) and
    /// must be repaired before entering a forecast.
    pub fn is_corrupt(self) -> bool {
        !(self.0.is_finite() && self.0 >= 0.0)
    }

    /// The larger of two rates (NaN-propagating like `f64::max` is not:
    /// prefers the non-NaN operand, matching `f64::max`).
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

impl From<f64> for RatePerMin {
    fn from(per_min: f64) -> Self {
        Self(per_min)
    }
}

impl From<RatePerMin> for f64 {
    fn from(rate: RatePerMin) -> Self {
        rate.0
    }
}

impl Add for RatePerMin {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl fmt::Display for RatePerMin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/min", self.0)
    }
}

/// An absolute wall-clock instant — whole milliseconds since the Unix
/// epoch — as read from the host's physical clock.
///
/// This is deliberately a *different type* from [`SimTimeMs`]: the
/// control plane's logical timeline (`Clock::now`, snapshot stamps,
/// telemetry ordering) is `SimTimeMs`, while wall time exists only at
/// the edges — tagging live-loop telemetry, pacing a real reconcile
/// interval, gating CI wall budgets. Keeping them apart means a
/// wall-clock read can never silently enter sim-time arithmetic (and
/// vice versa): there is no conversion between the two types at all.
/// A live backend that needs a sim-timeline stamp derives it from its
/// *round counter*, never from this type.
///
/// Serialized as whole integer milliseconds: epoch-scale instants do
/// not survive the `f64`-seconds encoding [`SimTimeMs`] uses (2^53
/// microsecond precision loss), and wall stamps are diagnostics, not
/// policy inputs, so they owe no legacy wire format.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WallTimeMs(i64);

impl WallTimeMs {
    /// The Unix epoch.
    pub const EPOCH: Self = Self(0);

    /// An instant from whole milliseconds since the Unix epoch.
    pub const fn from_millis(ms: i64) -> Self {
        Self(ms)
    }

    /// Whole milliseconds since the Unix epoch.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Checked duration since `earlier` (`None` on overflow).
    pub const fn checked_duration_since(self, earlier: Self) -> Option<DurationMs> {
        match self.0.checked_sub(earlier.0) {
            Some(ms) => Some(DurationMs(ms)),
            None => None,
        }
    }

    /// Saturating duration since `earlier`.
    pub const fn saturating_duration_since(self, earlier: Self) -> DurationMs {
        DurationMs(self.0.saturating_sub(earlier.0))
    }
}

impl Sub for WallTimeMs {
    type Output = DurationMs;

    fn sub(self, rhs: Self) -> DurationMs {
        self.saturating_duration_since(rhs)
    }
}

impl Add<DurationMs> for WallTimeMs {
    type Output = Self;

    fn add(self, rhs: DurationMs) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<DurationMs> for WallTimeMs {
    fn add_assign(&mut self, rhs: DurationMs) {
        *self = *self + rhs;
    }
}

impl fmt::Display for WallTimeMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms(wall)", self.0)
    }
}

impl Serialize for WallTimeMs {
    /// Writes whole integer milliseconds (see the type docs for why
    /// this differs from the `f64`-seconds sim-time encoding).
    fn serialize_json(&self, out: &mut String) {
        self.0.serialize_json(out);
    }
}

impl Deserialize for WallTimeMs {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sim_time_conversions() {
        let t = SimTimeMs::from_micros(10_000_000);
        assert_eq!(t.as_millis(), 10_000);
        assert_eq!(t.as_secs(), 10.0);
        assert_eq!(SimTimeMs::from_secs(10.0), t);
        assert_eq!(SimTimeMs::from_secs(-10.0).as_millis(), -10_000);
        assert_eq!(SimTimeMs::from_secs(f64::NAN), SimTimeMs::ZERO);
        assert_eq!(SimTimeMs::from_secs(f64::INFINITY), SimTimeMs::MAX);
        assert_eq!(SimTimeMs::from_secs(f64::NEG_INFINITY), SimTimeMs::MIN);
    }

    #[test]
    fn sentinel_subtraction_saturates() {
        let now = SimTimeMs::from_secs(100.0);
        let d = now - SimTimeMs::MIN;
        assert_eq!(d.as_millis(), i64::MAX);
        assert!(d.as_secs() > 1e15, "distant-past gap must look enormous");
        assert!((SimTimeMs::MIN - now).is_negative());
    }

    #[test]
    fn durations_compose() {
        let tick = DurationMs::from_secs(10.0);
        let mut t = SimTimeMs::ZERO;
        t += tick;
        t += tick;
        assert_eq!(t, SimTimeMs::from_secs(20.0));
        assert_eq!(t - SimTimeMs::ZERO, DurationMs::from_millis(20_000));
        assert_eq!(tick + tick - tick, tick);
        assert_eq!(
            SimTimeMs::MAX.checked_duration_since(SimTimeMs::MIN),
            None,
            "checked subtraction must observe overflow"
        );
    }

    #[test]
    fn wall_time_stays_out_of_the_sim_timeline() {
        // Arithmetic composes within the wall domain...
        let t0 = WallTimeMs::from_millis(1_754_500_000_000);
        let t1 = t0 + DurationMs::from_millis(250);
        assert_eq!(t1 - t0, DurationMs::from_millis(250));
        assert_eq!(t1.saturating_duration_since(t0).as_millis(), 250);
        assert_eq!(
            WallTimeMs::EPOCH.checked_duration_since(WallTimeMs::from_millis(i64::MIN)),
            None
        );
        // ...and serializes as integer millis, not f64 seconds: an
        // epoch-scale stamp must survive the wire bit-exactly.
        assert_eq!(
            serde_json::to_string(&t0).unwrap(),
            "1754500000000",
            "wall stamps are integer milliseconds on the wire"
        );
    }

    #[test]
    fn rate_corruption_detection() {
        assert!(RatePerMin::NAN.is_corrupt());
        assert!(RatePerMin::new(f64::INFINITY).is_corrupt());
        assert!(RatePerMin::new(-1.0).is_corrupt());
        assert!(!RatePerMin::ZERO.is_corrupt());
        assert!(!RatePerMin::new(1200.0).is_corrupt());
    }

    #[test]
    fn serde_wire_format_matches_raw_f64() {
        // Histories serialized as `RatePerMin` must be indistinguishable
        // from the raw-`f64` wire format golden reports were built on
        // (the vendored serde writes floats via `Display`).
        let rates = vec![RatePerMin::new(600.0), RatePerMin::new(12.5)];
        let raw = vec![600.0f64, 12.5];
        assert_eq!(
            serde_json::to_string(&rates).unwrap(),
            serde_json::to_string(&raw).unwrap()
        );
        // `now` serialized as `SimTimeMs` must look like `f64` seconds.
        let t = SimTimeMs::from_secs(120.5);
        assert_eq!(
            serde_json::to_string(&t).unwrap(),
            serde_json::to_string(&120.5f64).unwrap()
        );
        // NaN rates follow the raw-f64 `null` encoding.
        assert_eq!(serde_json::to_string(&RatePerMin::NAN).unwrap(), "null");
    }

    proptest! {
        /// Millisecond-aligned instants round-trip seconds <-> ms with no
        /// drift, and `as_secs` matches the simulator's historical
        /// `micros / 1e6` bits.
        #[test]
        fn sim_time_round_trips_without_drift(ms in -4_102_444_800_000i64..4_102_444_800_000) {
            let t = SimTimeMs::from_millis(ms);
            prop_assert_eq!(SimTimeMs::from_secs(t.as_secs()), t);
            if ms >= 0 {
                let us = ms as u64 * 1000;
                prop_assert_eq!(SimTimeMs::from_micros(us), t);
                let old_bits = (us as f64 / 1e6).to_bits();
                prop_assert_eq!(t.as_secs().to_bits(), old_bits);
            }
        }

        /// `RatePerMin::per_sec` reproduces the inline `/ 60.0` bits, and
        /// the raw value survives the wrap/unwrap round-trip untouched.
        #[test]
        fn rate_round_trips_without_drift(per_min in 0.0f64..1e9) {
            let r = RatePerMin::new(per_min);
            prop_assert_eq!(r.get().to_bits(), per_min.to_bits());
            prop_assert_eq!(r.per_sec().to_bits(), (per_min / 60.0).to_bits());
            prop_assert_eq!(f64::from(RatePerMin::from(per_min)).to_bits(), per_min.to_bits());
        }

        /// Duration arithmetic over aligned instants is exact.
        #[test]
        fn duration_round_trips(a in -1_000_000_000i64..1_000_000_000, b in -1_000_000_000i64..1_000_000_000) {
            let ta = SimTimeMs::from_millis(a);
            let tb = SimTimeMs::from_millis(b);
            let d = ta - tb;
            prop_assert_eq!(tb + d, ta);
            prop_assert_eq!(d.as_millis(), a - b);
        }
    }
}
