//! The class-aware multi-tenant optimization over heterogeneous
//! hardware.
//!
//! Where [`crate::opt::MultiTenantProblem`] decides one replica count
//! per job, this module decides a *(class, count)* vector per job: the
//! decision variables are `x_{j,c} >= 0` fractional replicas of class
//! `c` for job `j` (plus the usual drop rates for Penalty objectives).
//! A job's latency is scored by reducing its mixed pool to an
//! effective homogeneous M/D/c queue (the harmonic capacity-weighted
//! mean of the per-class service times — see [`faro_queueing::mixed`]),
//! and capacity is the vector quota `[vCPU, GPU, memory]` with
//! per-class costs from [`ReplicaClass::cost`].
//!
//! Unlike the homogeneous path, latency rows cannot be precomputed per
//! (job, rate): the effective service time `p_eff` varies continuously
//! with the class mix, so there is no finite axis to tabulate. Instead
//! integer evaluations share a bounded keyed memo on
//! `(job, rate, p_eff, servers)` — single-class pools keep `p_eff = p *
//! m_c` exactly, so a one-class cluster reproduces the homogeneous
//! estimates bit-for-bit (which is why [`crate::faro::FaroAutoscaler`]
//! only routes here when two or more classes are configured).
//!
//! The post-processing mirrors the homogeneous pipeline with a class
//! axis:
//!
//! - [`HeteroProblem::integerize`] rounds each `x_{j,c}`, floors every
//!   job at one replica, and while any capacity dimension is
//!   overcommitted removes the single replica (job, class) whose class
//!   consumes the most-overcommitted dimension at the least cluster
//!   objective loss.
//! - [`HeteroProblem::shrink`] removes replicas from jobs at full
//!   predicted utility while the cluster objective is unchanged,
//!   draining the *slowest* class first so the fast capacity freed
//!   last is the capacity other jobs actually want.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::error::{Error, Result};
use crate::objective::{ClusterObjective, JobUtility};
use crate::opt::{Fidelity, JobWorkload};
use crate::penalty::{phi, PenaltyShape};
use crate::types::{ClassAlloc, ReplicaClass, ResourceModel, RESOURCE_DIMS};
use crate::units::ReplicaCount;
use crate::utility::{step_utility, RelaxedUtility};
use faro_queueing::{mdc, RelaxedLatency};
use faro_solver::{Problem, Solution, Solver};

/// Bound on the mixed-pool latency memo, mirroring the homogeneous
/// solver's cap: the map is cleared when it fills (entries are cheap
/// to recompute).
const MEMO_CAPACITY: usize = 1 << 20;

/// The assembled class-aware optimization problem.
#[derive(Debug)]
pub struct HeteroProblem {
    jobs: Vec<JobWorkload>,
    resources: ResourceModel,
    objective: ClusterObjective,
    fidelity: Fidelity,
    relaxed_utility: RelaxedUtility,
    relaxed_latency: RelaxedLatency,
    /// `allowed[job][class]`: whether the job may run on the class
    /// (from [`crate::types::JobSpec::allows_class`]).
    allowed: Vec<Vec<bool>>,
    /// Keyed memo for integer mixed-pool latencies:
    /// `(job, rate bits, p_eff bits, servers)`. Ordered map so
    /// iteration order never depends on hashing
    /// (faro-lint: nondeterministic-iteration).
    memo: Mutex<BTreeMap<(usize, u64, u64, u32), f64>>,
}

impl Clone for HeteroProblem {
    /// Clones the problem definition with a fresh (empty) memo.
    fn clone(&self) -> Self {
        Self {
            jobs: self.jobs.clone(),
            resources: self.resources.clone(),
            objective: self.objective,
            fidelity: self.fidelity,
            relaxed_utility: self.relaxed_utility,
            relaxed_latency: self.relaxed_latency,
            allowed: self.allowed.clone(),
            memo: Mutex::new(BTreeMap::new()),
        }
    }
}

impl HeteroProblem {
    /// Builds a class-aware problem over the given jobs and resources.
    /// Every job is initially allowed on every class; restrict with
    /// [`HeteroProblem::with_affinity`].
    ///
    /// # Errors
    ///
    /// Fails when there are no jobs, a job has no trajectory or
    /// processing time, the resource model has no class table, a class
    /// has a non-positive service-time multiplier, or the quota cannot
    /// host one replica per job.
    pub fn new(
        jobs: Vec<JobWorkload>,
        resources: ResourceModel,
        objective: ClusterObjective,
        fidelity: Fidelity,
    ) -> Result<Self> {
        if jobs.is_empty() {
            return Err(Error::InvalidSnapshot("no jobs to optimize".into()));
        }
        for (i, j) in jobs.iter().enumerate() {
            if j.lambda_trajectories.is_empty() || j.lambda_trajectories.iter().any(Vec::is_empty) {
                return Err(Error::InvalidSnapshot(format!("job {i} has no trajectory")));
            }
            if j.processing_time.is_nan() || j.processing_time <= 0.0 {
                return Err(Error::InvalidSnapshot(format!(
                    "job {i} has no processing time"
                )));
            }
        }
        if !resources.has_classes() {
            return Err(Error::InvalidSnapshot(
                "hetero solve needs a replica class table".into(),
            ));
        }
        for class in &resources.classes {
            if !(class.speed.is_finite() && class.speed > 0.0) {
                return Err(Error::InvalidSnapshot(format!(
                    "class {} has service-time multiplier {}",
                    class.name, class.speed
                )));
            }
        }
        if (resources.replica_quota().get() as usize) < jobs.len() {
            return Err(Error::InvalidSnapshot(format!(
                "quota {} cannot host one replica for each of {} jobs",
                resources.replica_quota(),
                jobs.len()
            )));
        }
        let allowed = vec![vec![true; resources.n_classes()]; jobs.len()];
        Ok(Self {
            jobs,
            resources,
            objective,
            fidelity,
            relaxed_utility: RelaxedUtility::default(),
            relaxed_latency: RelaxedLatency::default(),
            allowed,
            memo: Mutex::new(BTreeMap::new()),
        })
    }

    /// Overrides the relaxed utility sharpness.
    pub fn with_utility(mut self, u: RelaxedUtility) -> Self {
        self.relaxed_utility = u;
        self
    }

    /// Overrides the relaxed latency knee.
    pub fn with_relaxed_latency(mut self, l: RelaxedLatency) -> Self {
        self.relaxed_latency = l;
        self.memo = Mutex::new(BTreeMap::new());
        self
    }

    /// Restricts which classes each job may run on
    /// (`masks[job][class]`).
    ///
    /// # Errors
    ///
    /// Fails when the mask dimensions do not match the problem or a
    /// job is left with no allowed class.
    pub fn with_affinity(mut self, masks: Vec<Vec<bool>>) -> Result<Self> {
        if masks.len() != self.jobs.len()
            || masks.iter().any(|m| m.len() != self.resources.n_classes())
        {
            return Err(Error::InvalidSnapshot(format!(
                "affinity mask shape {}x{} does not match {} jobs x {} classes",
                masks.len(),
                masks.first().map_or(0, Vec::len),
                self.jobs.len(),
                self.resources.n_classes()
            )));
        }
        for (i, mask) in masks.iter().enumerate() {
            if !mask.iter().any(|&a| a) {
                return Err(Error::InvalidSnapshot(format!(
                    "job {i} is not allowed on any replica class"
                )));
            }
        }
        self.allowed = masks;
        Ok(self)
    }

    /// Number of jobs.
    pub fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of replica classes.
    pub fn n_classes(&self) -> usize {
        self.resources.n_classes()
    }

    /// The resource model in use.
    pub fn resources(&self) -> &ResourceModel {
        &self.resources
    }

    /// The class table, fastest (lowest multiplier) first, as
    /// `(class index, class)` pairs. Ties break on the lower index.
    fn classes_by_speed(&self) -> Vec<(usize, &ReplicaClass)> {
        let mut order: Vec<(usize, &ReplicaClass)> =
            self.resources.classes.iter().enumerate().collect();
        order.sort_by(|a, b| {
            a.1.speed
                .partial_cmp(&b.1.speed)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        order
    }

    /// Reduces a fractional per-class count vector to the pool's total
    /// head count and effective service time (the fractional mirror of
    /// [`faro_queueing::mixed::effective_pool`]). `None` for an empty
    /// pool.
    fn pool(&self, p: f64, counts: &[f64]) -> Option<(f64, f64)> {
        let mut total = 0.0;
        let mut rate = 0.0;
        let mut first_nonzero = None;
        let mut mixed = false;
        for (c, &x) in counts.iter().enumerate() {
            let x = x.max(0.0);
            if x > 0.0 {
                total += x;
                rate += x / (p * self.resources.classes[c].speed);
                if first_nonzero.is_some() {
                    mixed = true;
                } else {
                    first_nonzero = Some(c);
                }
            }
        }
        let single = first_nonzero?;
        let p_eff = if !mixed {
            // Single-class pools skip the aggregation round-trip so the
            // reference class stays bit-identical to the homogeneous
            // estimator.
            p * self.resources.classes[single].speed
        } else {
            total / rate
        };
        Some((total, p_eff))
    }

    /// Memoized integer-pool latency at effective service time
    /// `p_eff`.
    fn integer_latency(&self, i: usize, k: f64, p_eff: f64, lambda: f64, n: u32) -> f64 {
        let key = (i, lambda.to_bits(), p_eff.to_bits(), n);
        if let Some(&v) = self.memo.lock().expect("latency memo").get(&key) {
            return v;
        }
        let v = match self.fidelity {
            Fidelity::Precise => mdc::latency_percentile(k, p_eff, lambda, ReplicaCount::new(n)),
            Fidelity::Relaxed => {
                self.relaxed_latency
                    .latency(k, p_eff, lambda, ReplicaCount::new(n))
            }
        }
        .unwrap_or(f64::INFINITY);
        let mut memo = self.memo.lock().expect("latency memo");
        if memo.len() >= MEMO_CAPACITY {
            memo.clear();
        }
        memo.insert(key, v);
        v
    }

    /// Estimated latency for job `i` at fractional per-class counts and
    /// arrival rate `lambda` (already drop-adjusted).
    fn latency_counts(&self, i: usize, lambda: f64, counts: &[f64]) -> f64 {
        let job = &self.jobs[i];
        let k = job.slo.percentile;
        let p = job.processing_time;
        let lambda = lambda.max(0.0);
        let Some((total, p_eff)) = self.pool(p, counts) else {
            return f64::INFINITY;
        };
        match self.fidelity {
            Fidelity::Precise => {
                let n = total.max(1.0).round() as u32;
                self.integer_latency(i, k, p_eff, lambda, n)
            }
            Fidelity::Relaxed => {
                // Mirrors `RelaxedLatency::latency_fractional` at the
                // effective service time, branch by branch.
                let x = total.max(1.0);
                if !x.is_finite() {
                    return f64::INFINITY;
                }
                let lo = x.floor();
                let hi = x.ceil();
                let l_lo = self.integer_latency(i, k, p_eff, lambda, lo as u32);
                if lo == hi {
                    return l_lo;
                }
                let l_hi = self.integer_latency(i, k, p_eff, lambda, hi as u32);
                if l_lo.is_infinite() || l_hi.is_infinite() {
                    return f64::INFINITY;
                }
                let frac = x - lo;
                l_lo + (l_hi - l_lo) * frac
            }
        }
    }

    /// Expected utility of job `i` at fractional per-class counts,
    /// averaged over trajectories and window steps, before the drop
    /// multiplier.
    pub fn expected_utility(&self, i: usize, counts: &[f64], drop_rate: f64) -> f64 {
        let job = &self.jobs[i];
        let mut sum = 0.0;
        let mut count = 0usize;
        for traj in &job.lambda_trajectories {
            for &lambda in traj {
                let lambda_eff = lambda * (1.0 - drop_rate.clamp(0.0, 1.0));
                let l = self.latency_counts(i, lambda_eff, counts);
                let u = match self.fidelity {
                    Fidelity::Precise => step_utility(l, job.slo.latency),
                    Fidelity::Relaxed => self.relaxed_utility.value(l, job.slo.latency),
                };
                sum += u;
                count += 1;
            }
        }
        sum / count.max(1) as f64
    }

    /// Per-job utility record at a fractional per-class allocation.
    fn job_utility(&self, i: usize, counts: &[f64], d: f64) -> JobUtility {
        let u = self.expected_utility(i, counts, d);
        let shape = match self.fidelity {
            Fidelity::Precise => PenaltyShape::Step,
            Fidelity::Relaxed => PenaltyShape::Relaxed,
        };
        JobUtility {
            utility: u,
            effective_utility: phi(d, shape) * u,
            priority: self.jobs[i].priority,
        }
    }

    /// Per-job utility record at an integer per-class allocation.
    fn job_utility_alloc(&self, i: usize, alloc: &ClassAlloc, d: f64) -> JobUtility {
        let counts: Vec<f64> = alloc.as_slice().iter().map(|&n| f64::from(n)).collect();
        self.job_utility(i, &counts, d)
    }

    /// Cluster objective value (maximize convention) at a flat
    /// `n_jobs * n_classes` count vector. `drops` may be empty when the
    /// objective does not use drop rates.
    pub fn cluster_value(&self, flat: &[f64], drops: &[f64]) -> f64 {
        let nc = self.n_classes();
        let utilities: Vec<JobUtility> = (0..self.jobs.len())
            .map(|i| {
                let d = drops.get(i).copied().unwrap_or(0.0);
                self.job_utility(i, &flat[i * nc..(i + 1) * nc], d)
            })
            .collect();
        self.objective.aggregate(&utilities)
    }

    /// Splits a solver variable vector into `(counts, drops)`.
    fn split_vars<'a>(&self, v: &'a [f64]) -> (&'a [f64], &'a [f64]) {
        let nx = self.jobs.len() * self.n_classes();
        if self.objective.uses_drop_rates() {
            (&v[..nx], &v[nx..])
        } else {
            (v, &[])
        }
    }

    /// Seeds the solver start point: each job's current total placed
    /// into its allowed classes fastest-first, spilling a class when it
    /// alone could not host the remainder.
    fn seed(&self, current: &[u32]) -> Vec<f64> {
        let nc = self.n_classes();
        let order = self.classes_by_speed();
        let mut x0 = vec![0.0; self.jobs.len() * nc];
        for (j, slot) in x0.chunks_mut(nc).enumerate() {
            let mut remaining = f64::from(current.get(j).copied().unwrap_or(1).max(1));
            let mut last_allowed = None;
            for &(c, _) in &order {
                if !self.allowed[j][c] {
                    continue;
                }
                last_allowed = Some(c);
                let room = self.resources.class_quota(c).as_f64();
                let take = remaining.min(room);
                slot[c] = take;
                remaining -= take;
                if remaining <= 0.0 {
                    break;
                }
            }
            if remaining > 0.0 {
                // Over-quota starts are legal (COBYLA treats them as
                // constraint violations); park the excess on the
                // slowest allowed class.
                if let Some(c) = last_allowed {
                    slot[c] += remaining;
                }
            }
        }
        x0
    }

    /// Solves the continuous class-aware problem with the given
    /// solver, starting from the current per-job replica totals.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn solve(&self, solver: &dyn Solver, current: &[u32]) -> Result<HeteroAllocation> {
        let n = self.jobs.len();
        let mut x0 = self.seed(current);
        if self.objective.uses_drop_rates() {
            x0.extend(std::iter::repeat_n(0.0, n));
        }
        let adapter = HeteroAdapter { inner: self };
        let sol: Solution = solver.solve(&adapter, &x0)?;
        let (xs, ds) = self.split_vars(&sol.x);
        Ok(HeteroAllocation {
            counts: xs.to_vec(),
            drop_rates: if ds.is_empty() {
                vec![0.0; n]
            } else {
                ds.to_vec()
            },
            objective_value: -sol.objective,
            evals: sol.evals,
        })
    }

    /// Converts a continuous class-aware allocation into integer
    /// per-class counts: round each `x_{j,c}` to nearest, floor every
    /// job at one replica (on its fastest allowed class), and while any
    /// capacity dimension is overcommitted remove the replica whose
    /// class consumes the most-overcommitted dimension at the least
    /// cluster objective loss (same patched-utility incremental scoring
    /// as the homogeneous `integerize`).
    pub fn integerize(&self, alloc: &HeteroAllocation) -> Vec<ClassAlloc> {
        let n = self.jobs.len();
        let nc = self.n_classes();
        let mut allocs: Vec<ClassAlloc> = (0..n)
            .map(|j| {
                let mut a = ClassAlloc::zero(nc);
                for c in 0..nc {
                    let x = alloc.counts[j * nc + c];
                    a.set(c, x.round().max(0.0) as u32);
                }
                if a.total() == 0 {
                    let fastest = self
                        .classes_by_speed()
                        .into_iter()
                        .find(|&(c, _)| self.allowed[j][c])
                        .map_or(0, |(c, _)| c);
                    a.set(fastest, 1);
                }
                a
            })
            .collect();
        let drop_of = |j: usize| alloc.drop_rates.get(j).copied().unwrap_or(0.0);
        let mut utils: Vec<JobUtility> = (0..n)
            .map(|j| self.job_utility_alloc(j, &allocs[j], drop_of(j)))
            .collect();
        loop {
            let mut usage = [0.0; RESOURCE_DIMS];
            for a in &allocs {
                for (u, v) in usage.iter_mut().zip(self.resources.usage_of(a)) {
                    *u += v;
                }
            }
            if self.resources.fits(&usage) {
                break;
            }
            let caps = self.resources.capacities();
            let dim = (0..RESOURCE_DIMS)
                .max_by(|&a, &b| {
                    (usage[a] - caps[a])
                        .partial_cmp(&(usage[b] - caps[b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0);
            let before = self.objective.aggregate(&utils);
            let mut best: Option<(usize, usize, f64, JobUtility)> = None;
            for j in 0..n {
                if allocs[j].total() <= 1 {
                    continue;
                }
                for c in 0..nc {
                    if allocs[j].count(c) == 0 || self.resources.classes[c].cost()[dim] <= 0.0 {
                        continue;
                    }
                    let mut cand_alloc = allocs[j];
                    cand_alloc.add(c, -1);
                    let cand = self.job_utility_alloc(j, &cand_alloc, drop_of(j));
                    let saved = std::mem::replace(&mut utils[j], cand);
                    let after = self.objective.aggregate(&utils);
                    utils[j] = saved;
                    let loss = before - after;
                    if best.as_ref().is_none_or(|&(_, _, b, _)| loss < b) {
                        best = Some((j, c, loss, cand));
                    }
                }
            }
            match best {
                Some((j, c, _, cand)) => {
                    allocs[j].add(c, -1);
                    utils[j] = cand;
                }
                // Every job is at one replica (or no class consumes the
                // overcommitted dimension): leave the floor in place and
                // let vector admission arbitrate, as the homogeneous
                // pipeline does.
                None => break,
            }
        }
        allocs
    }

    /// Stage-3 shrinking with a class axis: iteratively removes
    /// replicas from jobs at full predicted utility while the cluster
    /// objective stays unchanged, draining the slowest class first.
    pub fn shrink(&self, allocs: &mut [ClassAlloc], drops: &[f64]) {
        let eps = 1e-9;
        let drop_of = |j: usize| drops.get(j).copied().unwrap_or(0.0);
        let mut utils: Vec<JobUtility> = (0..allocs.len())
            .map(|j| self.job_utility_alloc(j, &allocs[j], drop_of(j)))
            .collect();
        let mut order = self.classes_by_speed();
        order.reverse(); // Slowest first.
        for j in 0..allocs.len() {
            'job: loop {
                if allocs[j].total() <= 1 {
                    break;
                }
                if utils[j].utility < 1.0 - 1e-9 {
                    break; // Only shrink jobs at (predicted) utility 1.
                }
                let before = self.objective.aggregate(&utils);
                for &(c, _) in &order {
                    if allocs[j].count(c) == 0 {
                        continue;
                    }
                    let mut cand_alloc = allocs[j];
                    cand_alloc.add(c, -1);
                    let cand = self.job_utility_alloc(j, &cand_alloc, drop_of(j));
                    let saved = std::mem::replace(&mut utils[j], cand);
                    let after = self.objective.aggregate(&utils);
                    if after >= before - eps {
                        allocs[j] = cand_alloc;
                        continue 'job;
                    }
                    utils[j] = saved;
                }
                break; // No class can give one up for free.
            }
        }
    }
}

/// Result of the continuous class-aware solve.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroAllocation {
    /// Fractional per-class replica counts, flattened
    /// `job * n_classes + class`.
    pub counts: Vec<f64>,
    /// Drop rates per job (zero when unused).
    pub drop_rates: Vec<f64>,
    /// Cluster objective at the solution (maximize convention).
    pub objective_value: f64,
    /// Function evaluations spent.
    pub evals: usize,
}

/// Adapts [`HeteroProblem`] to the solver's minimize convention.
struct HeteroAdapter<'a> {
    inner: &'a HeteroProblem,
}

impl Problem for HeteroAdapter<'_> {
    fn dim(&self) -> usize {
        let nx = self.inner.jobs.len() * self.inner.n_classes();
        if self.inner.objective.uses_drop_rates() {
            nx + self.inner.jobs.len()
        } else {
            nx
        }
    }

    fn objective(&self, v: &[f64]) -> f64 {
        let (xs, ds) = self.inner.split_vars(v);
        -self.inner.cluster_value(xs, ds)
    }

    fn num_constraints(&self) -> usize {
        // One per capacity dimension plus one "at least one replica"
        // floor per job.
        RESOURCE_DIMS + self.inner.jobs.len()
    }

    fn constraints(&self, v: &[f64], out: &mut [f64]) {
        let (xs, _) = self.inner.split_vars(v);
        let r = &self.inner.resources;
        let nc = self.inner.n_classes();
        let caps = r.capacities();
        let mut usage = [0.0; RESOURCE_DIMS];
        for (j, counts) in xs.chunks(nc).enumerate() {
            let mut total = 0.0;
            for (c, &x) in counts.iter().enumerate() {
                let x = x.max(0.0);
                total += x;
                for (u, k) in usage.iter_mut().zip(r.classes[c].cost()) {
                    *u += x * k;
                }
            }
            out[RESOURCE_DIMS + j] = total - 1.0;
        }
        for d in 0..RESOURCE_DIMS {
            out[d] = caps[d] - usage[d];
        }
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        let r = &self.inner.resources;
        let nc = self.inner.n_classes();
        let mut b = Vec::with_capacity(self.dim());
        for j in 0..self.inner.jobs.len() {
            for c in 0..nc {
                if self.inner.allowed[j][c] {
                    b.push((0.0, r.class_quota(c).as_f64()));
                } else {
                    b.push((0.0, 0.0));
                }
            }
        }
        if self.inner.objective.uses_drop_rates() {
            b.extend(std::iter::repeat_n((0.0, 1.0), self.inner.jobs.len()));
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Slo;
    use faro_solver::Cobyla;

    fn slo(latency: f64) -> Slo {
        Slo {
            latency,
            percentile: 0.99,
        }
    }

    fn gpu_cpu_resources(gpus: f64, extra_cpus: f64) -> ResourceModel {
        ResourceModel::heterogeneous(
            vec![ReplicaClass::gpu("gpu"), ReplicaClass::cpu("cpu", 3.0)],
            gpus + extra_cpus,
            gpus,
            4.0 * gpus + extra_cpus,
        )
    }

    #[test]
    fn validation_rejects_bad_input() {
        let r = gpu_cpu_resources(4.0, 4.0);
        assert!(
            HeteroProblem::new(vec![], r.clone(), ClusterObjective::Sum, Fidelity::Relaxed)
                .is_err()
        );
        let job = JobWorkload::constant(5.0, 0.15, slo(0.6), 1.0);
        assert!(HeteroProblem::new(
            vec![job.clone()],
            ResourceModel::replicas(ReplicaCount::new(8)),
            ClusterObjective::Sum,
            Fidelity::Relaxed
        )
        .is_err());
        let p = HeteroProblem::new(
            vec![job.clone(), job],
            r,
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap();
        // A job stripped of every class is rejected.
        assert!(p
            .with_affinity(vec![vec![true, true], vec![false, false]])
            .is_err());
    }

    #[test]
    fn single_class_pool_matches_homogeneous_estimates() {
        // A one-class table must reproduce the homogeneous problem's
        // expected utilities bit-for-bit: p_eff = p * 1.0 == p.
        let job = JobWorkload::constant(12.0, 0.15, slo(0.6), 1.0);
        let r = ResourceModel::heterogeneous(vec![ReplicaClass::gpu("gpu")], 16.0, 16.0, 64.0);
        let hetero = HeteroProblem::new(
            vec![job.clone()],
            r,
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap();
        let homo = crate::opt::MultiTenantProblem::new(
            vec![job],
            ResourceModel::replicas(ReplicaCount::new(16)),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap();
        for n in 1..=10u32 {
            let uh = hetero.expected_utility(0, &[f64::from(n)], 0.0);
            let u0 = homo.expected_utility(0, f64::from(n), 0.0);
            assert!(uh == u0, "n={n}: {uh} != {u0}");
        }
    }

    #[test]
    fn solver_places_loose_job_on_cpus_when_gpus_are_scarce() {
        // One tight-SLO job that only works on the GPU class and one
        // loose-SLO job that is fine 3x slower. With only enough GPUs
        // for the tight job, the solve must put the loose job's
        // replicas on the CPU class.
        let tight = JobWorkload::constant(10.0, 0.15, slo(0.4), 1.0);
        let loose = JobWorkload::constant(4.0, 0.15, slo(3.0), 1.0);
        let r = gpu_cpu_resources(4.0, 12.0);
        let p = HeteroProblem::new(
            vec![tight, loose],
            r,
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap();
        let alloc = p.solve(&Cobyla::default(), &[4, 2]).unwrap();
        let allocs = p.integerize(&alloc);
        // Both jobs end at utility ~1 and the cluster fits.
        let mut usage = [0.0; RESOURCE_DIMS];
        for a in &allocs {
            for (u, v) in usage.iter_mut().zip(p.resources().usage_of(a)) {
                *u += v;
            }
        }
        assert!(p.resources().fits(&usage), "over capacity: {usage:?}");
        let u_tight = p.job_utility_alloc(0, &allocs[0], 0.0).utility;
        let u_loose = p.job_utility_alloc(1, &allocs[1], 0.0).utility;
        assert!(u_tight > 0.9, "tight job utility {u_tight}");
        assert!(u_loose > 0.9, "loose job utility {u_loose}");
        // The loose job leans on CPU replicas: it cannot have taken
        // the GPUs the tight job needs.
        assert!(
            allocs[1].count(1) >= 1,
            "loose job never used the CPU class: {:?}",
            allocs[1]
        );
        assert!(
            allocs[0].count(0) >= 3,
            "tight job lost its GPUs: {:?}",
            allocs[0]
        );
    }

    #[test]
    fn affinity_masks_zero_out_disallowed_classes() {
        let job = JobWorkload::constant(6.0, 0.15, slo(0.5), 1.0);
        let r = gpu_cpu_resources(6.0, 6.0);
        let p = HeteroProblem::new(
            vec![job.clone(), job],
            r,
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap()
        .with_affinity(vec![vec![true, false], vec![true, true]])
        .unwrap();
        let alloc = p.solve(&Cobyla::default(), &[2, 2]).unwrap();
        let allocs = p.integerize(&alloc);
        assert_eq!(allocs[0].count(1), 0, "gpu-only job got CPU replicas");
    }

    #[test]
    fn integerize_respects_vector_capacity() {
        // Force a heavy over-ask and check the trim lands inside every
        // capacity dimension.
        let job = JobWorkload::constant(20.0, 0.15, slo(0.5), 1.0);
        let r = gpu_cpu_resources(3.0, 3.0);
        let p = HeteroProblem::new(
            vec![job.clone(), job],
            r,
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap();
        let alloc = HeteroAllocation {
            counts: vec![5.0, 4.0, 5.0, 4.0],
            drop_rates: vec![0.0, 0.0],
            objective_value: 0.0,
            evals: 0,
        };
        let allocs = p.integerize(&alloc);
        let mut usage = [0.0; RESOURCE_DIMS];
        for a in &allocs {
            assert!(a.total() >= 1);
            for (u, v) in usage.iter_mut().zip(p.resources().usage_of(a)) {
                *u += v;
            }
        }
        assert!(p.resources().fits(&usage), "over capacity: {usage:?}");
    }

    #[test]
    fn shrink_drains_the_slow_class_first() {
        let job = JobWorkload::constant(2.0, 0.10, slo(2.0), 1.0);
        let r = gpu_cpu_resources(4.0, 8.0);
        let p = HeteroProblem::new(vec![job], r, ClusterObjective::Sum, Fidelity::Relaxed).unwrap();
        // Grossly overprovisioned mixed pool at utility 1.
        let mut allocs = vec![ClassAlloc::from_counts(&[3, 5]).unwrap()];
        p.shrink(&mut allocs, &[0.0]);
        assert!(
            allocs[0].total() < 8,
            "shrink removed nothing: {:?}",
            allocs[0]
        );
        // The slow CPU replicas drain before the GPU ones.
        assert!(
            allocs[0].count(1) == 0 || allocs[0].count(0) == 3,
            "shrink took GPUs while CPUs remained: {:?}",
            allocs[0]
        );
    }
}
