//! A Cilantro-like multi-tenant baseline (paper Sec. 2, Figure 2).
//!
//! Cilantro (OSDI '23) allocates resources from *online-learned*
//! performance models: a tree/binning estimator mapping load-per-replica
//! to observed latency, and an ARMA-family forecaster over recent
//! arrival rates. The paper finds this adapts too slowly for ML
//! inference workloads: the binning estimator needs many observations
//! per bin before its predictions are trustworthy, and the AR model is
//! refit on a fixed-size recent window.
//!
//! This baseline reproduces those structural choices: an optimistic
//! binned latency model learned only from its own observations, an AR(8)
//! rate forecaster refit each planning round on the last 60 minutes, and
//! a greedy utility allocation under the quota.

use crate::admission::{Admission, ClampToQuota};
use crate::policy::Policy;
use crate::types::{ClusterSnapshot, DesiredState, JobDecision};
use crate::units::{RatePerMin, SimTimeMs};
use faro_forecast::arma::Ar;
use faro_forecast::Forecaster;

/// Bins of load-per-replica (requests/second) with EWMA-learned tail
/// latency.
#[derive(Debug, Clone)]
struct BinnedLatency {
    /// Upper edge of each bin (load per replica, req/s).
    edges: Vec<f64>,
    /// EWMA latency per bin; `None` until observed.
    latency: Vec<Option<f64>>,
    /// Observation counts per bin.
    count: Vec<usize>,
    ewma: f64,
}

impl BinnedLatency {
    fn new() -> Self {
        // Bin edges up to 10 req/s per replica (a 100 ms model saturates
        // at 10 req/s per replica).
        let edges: Vec<f64> = (1..=40).map(|i| f64::from(i) * 0.25).collect();
        let n = edges.len();
        Self {
            edges,
            latency: vec![None; n],
            count: vec![0; n],
            ewma: 0.3,
        }
    }

    fn bin_of(&self, load_per_replica: f64) -> usize {
        self.edges
            .iter()
            .position(|&e| load_per_replica <= e)
            .unwrap_or(self.edges.len() - 1)
    }

    fn observe(&mut self, load_per_replica: f64, tail_latency: f64) {
        if !tail_latency.is_finite() || load_per_replica < 0.0 {
            return;
        }
        let b = self.bin_of(load_per_replica);
        self.count[b] += 1;
        self.latency[b] = Some(match self.latency[b] {
            Some(prev) => prev + self.ewma * (tail_latency - prev),
            None => tail_latency,
        });
    }

    /// Predicted latency at a load; optimistic (assumes the SLO is met)
    /// for unobserved bins — the root cause of slow convergence.
    fn predict(&self, load_per_replica: f64) -> Option<f64> {
        let b = self.bin_of(load_per_replica);
        // Require a handful of observations before trusting a bin.
        if self.count[b] >= 3 {
            return self.latency[b];
        }
        // Fall back to the nearest trustworthy bin below (lighter load
        // never has *higher* latency, so this stays optimistic).
        (0..b)
            .rev()
            .find(|&i| self.count[i] >= 3)
            .and_then(|i| self.latency[i])
    }
}

/// The Cilantro-like policy.
pub struct CilantroLike {
    /// Planning interval (seconds).
    pub interval: f64,
    /// AR window (minutes of history used for refitting).
    pub ar_window: usize,
    models: Vec<BinnedLatency>,
    last_plan: Option<SimTimeMs>,
    current: Vec<JobDecision>,
}

impl Default for CilantroLike {
    fn default() -> Self {
        Self {
            interval: 300.0,
            ar_window: 60,
            models: Vec::new(),
            last_plan: None,
            current: Vec::new(),
        }
    }
}

impl CilantroLike {
    /// Forecasts the mean next-window rate (requests/minute) by
    /// refitting AR(8) on the recent fixed-size window.
    fn forecast_rate(&self, history: &[RatePerMin]) -> f64 {
        let history: Vec<f64> = history.iter().map(|r| r.get()).collect();
        let window = &history[history.len().saturating_sub(self.ar_window)..];
        if window.len() < 12 {
            return window.last().copied().unwrap_or(0.0);
        }
        let mut ar = match Ar::new(8, 10, 7) {
            Ok(a) => a,
            Err(_) => return window.last().copied().unwrap_or(0.0),
        };
        if ar.fit(window).is_err() {
            return window.last().copied().unwrap_or(0.0);
        }
        let ctx = &window[window.len() - 10..];
        match ar.predict(ctx) {
            Ok(pred) => {
                let mean = pred.iter().sum::<f64>() / pred.len() as f64;
                mean.max(0.0)
            }
            Err(_) => window.last().copied().unwrap_or(0.0),
        }
    }
}

impl Policy for CilantroLike {
    fn name(&self) -> &str {
        "Cilantro-like"
    }

    fn decide(&mut self, snapshot: &ClusterSnapshot) -> DesiredState {
        let n = snapshot.jobs.len();
        if self.current.len() != n {
            self.current = snapshot.jobs.iter().map(JobDecision::keep).collect();
            self.models = (0..n).map(|_| BinnedLatency::new()).collect();
        }
        // Continuous learning from every tick's observation.
        for (i, obs) in snapshot.jobs.iter().enumerate() {
            let replicas = obs.ready_replicas.max(1);
            let load = obs.recent_arrival_rate / f64::from(replicas);
            self.models[i].observe(load, obs.recent_tail_latency);
        }

        let due = self
            .last_plan
            .is_none_or(|t| (snapshot.now - t).as_secs() >= self.interval);
        if due {
            self.last_plan = Some(snapshot.now);
            let quota = snapshot.replica_quota();
            // Greedy: start everyone at 1 replica, then add the replica
            // with the largest predicted latency improvement toward the
            // SLO.
            let mut alloc = vec![1u32; n];
            let rates: Vec<f64> = snapshot
                .jobs
                .iter()
                .map(|obs| self.forecast_rate(&obs.arrival_rate_history) / 60.0)
                .collect();
            let mut spent: u32 = n as u32;
            while spent < quota.get() {
                let mut best: Option<(usize, f64)> = None;
                for i in 0..n {
                    let slo = snapshot.jobs[i].spec.slo.latency;
                    let now_lat = self.models[i]
                        .predict(rates[i] / f64::from(alloc[i]))
                        .unwrap_or(slo * 0.5); // Optimistic default.
                    if now_lat <= slo {
                        continue; // Believed satisfied: no more replicas.
                    }
                    let next_lat = self.models[i]
                        .predict(rates[i] / f64::from(alloc[i] + 1))
                        .unwrap_or(slo * 0.5);
                    let gain = now_lat - next_lat;
                    if best.is_none_or(|(_, g)| gain > g) {
                        best = Some((i, gain));
                    }
                }
                match best {
                    Some((i, _)) => {
                        alloc[i] += 1;
                        spent += 1;
                    }
                    None => break, // Everyone believed satisfied.
                }
            }
            for (i, d) in self.current.iter_mut().enumerate() {
                d.target_replicas = alloc[i];
            }
        }
        let mut out: DesiredState = snapshot
            .job_ids()
            .zip(self.current.iter().copied())
            .collect();
        ClampToQuota.admit(snapshot, &mut out);
        self.current = out.iter().map(|(_, d)| d).collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{JobId, JobObservation, JobSpec, ResourceModel};

    fn t0(ds: &DesiredState) -> u32 {
        ds.get(JobId::new(0)).unwrap().target_replicas
    }

    fn obs(rate_per_min: f64, target: u32, tail: f64) -> JobObservation {
        JobObservation {
            spec: std::sync::Arc::new(JobSpec::resnet34("job")),
            target_replicas: target,
            ready_replicas: target,
            queue_len: 0,
            arrival_rate_history: std::sync::Arc::new(vec![RatePerMin::new(rate_per_min); 70]),
            recent_arrival_rate: rate_per_min / 60.0,
            mean_processing_time: 0.180,
            recent_tail_latency: tail,
            drop_rate: 0.0,
            class_target: None,
            class_ready: None,
        }
    }

    fn snap(now: f64, quota: u32, jobs: Vec<JobObservation>) -> ClusterSnapshot {
        ClusterSnapshot {
            now: SimTimeMs::from_secs(now),
            resources: ResourceModel::replicas(crate::units::ReplicaCount::new(quota)),
            jobs,
        }
    }

    #[test]
    fn initially_optimistic_underallocates() {
        // An overloaded job, but the latency model has no data: Cilantro
        // believes everything is fine and allocates (almost) nothing —
        // the slow-adaptation pathology of Figure 2.
        let mut p = CilantroLike::default();
        let ds = p.decide(&snap(0.0, 32, vec![obs(2400.0, 1, 0.1)]));
        assert!(t0(&ds) <= 2, "optimistic cold start: {ds:?}");
    }

    #[test]
    fn learns_from_observations_eventually() {
        let mut p = CilantroLike::default();
        // Feed many ticks of (overloaded, bad latency) observations so
        // the relevant bins accumulate data, then replan.
        let mut target = 1;
        for k in 0..40 {
            let t = k as f64 * 10.0;
            let ds = p.decide(&snap(t, 32, vec![obs(2400.0, target, 3.0)]));
            target = t0(&ds);
        }
        // After two planning rounds with populated bins, the allocation
        // must have moved above the optimistic initial one.
        assert!(target > 1, "should eventually scale up, got {target}");
    }

    #[test]
    fn binned_model_requires_data() {
        let mut m = BinnedLatency::new();
        assert_eq!(m.predict(1.0), None);
        for _ in 0..3 {
            m.observe(1.0, 0.9);
        }
        let p = m.predict(1.0).unwrap();
        assert!((p - 0.9).abs() < 1e-9);
        // Non-finite observations are ignored.
        m.observe(1.0, f64::INFINITY);
        assert!(m.predict(1.0).unwrap().is_finite());
    }

    #[test]
    fn respects_quota() {
        let mut p = CilantroLike::default();
        let jobs = (0..4).map(|_| obs(2400.0, 4, 3.0)).collect();
        let ds = p.decide(&snap(0.0, 8, jobs));
        assert!(ds.total_replicas() <= 16);
    }
}
