//! The autoscaling-policy interface shared by Faro and every baseline.
//!
//! The reconciler (driving a simulated or real control plane) calls
//! [`Policy::decide`] at a fixed tick (Faro's reactive interval, 10 s);
//! each policy applies its own internal cadence on top. Quota
//! enforcement is not part of this interface: policies that clamp or
//! admit their own output compose with an
//! [`Admission`](crate::admission::Admission) strategy internally, and
//! the reconciler applies a cluster-level admission on top.

use crate::types::{ClusterSnapshot, DesiredState};

/// An autoscaling policy.
pub trait Policy: Send {
    /// Display name (matches the paper's policy names).
    fn name(&self) -> &str;

    /// Produces the desired cluster state for this round. Jobs absent
    /// from the returned state keep their current allocation; the
    /// policies shipped here always cover every job in the snapshot.
    fn decide(&mut self, snapshot: &ClusterSnapshot) -> DesiredState;
}
