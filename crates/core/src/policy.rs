//! The autoscaling-policy interface shared by Faro and every baseline.
//!
//! The reconciler (driving a simulated or real control plane) calls
//! [`Policy::decide`] at a fixed tick (Faro's reactive interval, 10 s);
//! each policy applies its own internal cadence on top. Quota
//! enforcement is not part of this interface: policies that clamp or
//! admit their own output compose with an
//! [`Admission`](crate::admission::Admission) strategy internally, and
//! the reconciler applies a cluster-level admission on top.

use crate::sharded::{ShardSolveRecord, ShardSpan};
use crate::types::{ClusterSnapshot, DesiredState};

/// What a policy's last [`Policy::decide`] round did internally —
/// solver effort and resilience triggers that the telemetry layer
/// records into per-round decision traces.
///
/// The default (all zeros / false / empty) is correct for policies with
/// no solver: the baselines never override [`Policy::introspect`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicyIntrospection {
    /// Solver objective evaluations consumed by the round (0 when no
    /// solve ran).
    pub solver_evals: u64,
    /// Whether the round ran a long-term solve.
    pub long_term_solve: bool,
    /// Whether the solve failed or produced junk and a previous good
    /// allocation was carried forward instead.
    pub carried_forward: bool,
    /// Corrupt history samples repaired before forecasting (resilient
    /// metric sanitization).
    pub sanitized_samples: u64,
    /// What the sharded solve did, when the round ran one (`None` for
    /// the global path and for reactive rounds).
    pub shard_record: Option<ShardSolveRecord>,
    /// Per-solved-shard spans (ascending shard index) from the round's
    /// sharded solve, empty otherwise.
    pub shard_spans: Vec<ShardSpan>,
}

/// An autoscaling policy.
pub trait Policy: Send {
    /// Display name (matches the paper's policy names).
    fn name(&self) -> &str;

    /// Produces the desired cluster state for this round. Jobs absent
    /// from the returned state keep their current allocation; the
    /// policies shipped here always cover every job in the snapshot.
    fn decide(&mut self, snapshot: &ClusterSnapshot) -> DesiredState;

    /// Introspection for the most recent [`Policy::decide`] round.
    /// Purely observational: the reconciler only feeds it to telemetry
    /// sinks, never back into control decisions.
    fn introspect(&self) -> PolicyIntrospection {
        PolicyIntrospection::default()
    }
}
