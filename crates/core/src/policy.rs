//! The autoscaling-policy interface shared by Faro and every baseline.
//!
//! The simulator (or a real control plane) calls [`Policy::decide`] at a
//! fixed tick (Faro's reactive interval, 10 s); each policy applies its
//! own internal cadence on top.

use crate::types::{ClusterSnapshot, JobDecision};

/// An autoscaling policy.
pub trait Policy: Send {
    /// Display name (matches the paper's policy names).
    fn name(&self) -> &str;

    /// Produces one decision per job in the snapshot. Implementations
    /// must return exactly `snapshot.jobs.len()` decisions.
    fn decide(&mut self, snapshot: &ClusterSnapshot) -> Vec<JobDecision>;
}

/// Clamps a set of decisions into the cluster quota: replica targets are
/// floored at 1 and, if the total exceeds the quota, reduced round-robin
/// starting from the largest allocation.
pub fn enforce_quota(decisions: &mut [JobDecision], quota: u32) {
    for d in decisions.iter_mut() {
        d.target_replicas = d.target_replicas.max(1);
        d.drop_rate = d.drop_rate.clamp(0.0, 1.0);
    }
    let mut total: u32 = decisions.iter().map(|d| d.target_replicas).sum();
    while total > quota {
        // Trim the currently largest allocation (but never below 1).
        let Some(max_idx) = decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.target_replicas > 1)
            .max_by_key(|(_, d)| d.target_replicas)
            .map(|(i, _)| i)
        else {
            break;
        };
        decisions[max_idx].target_replicas -= 1;
        total -= 1;
    }
}

/// Kubernetes-style quota *admission* for reactive policies: each job
/// keeps `min(desired, previous)` replicas unconditionally (downscales
/// always succeed), and requested increases are admitted in rotating
/// job order while quota remains — mirroring pods racing into a
/// resource quota. This is what lets an aggressive scaler (Oneshot)
/// starve its neighbours, as the paper observes.
pub fn admit_quota(decisions: &mut [JobDecision], prev: &[u32], quota: u32, rotate: usize) {
    let n = decisions.len();
    if n == 0 {
        return;
    }
    let mut granted: Vec<u32> = decisions
        .iter()
        .zip(prev)
        .map(|(d, &p)| d.target_replicas.clamp(1, p.max(1)))
        .collect();
    let mut total: u32 = granted.iter().sum();
    // Admit increases in rotating order.
    for k in 0..n {
        let i = (rotate + k) % n;
        let want = decisions[i].target_replicas.max(1);
        while granted[i] < want && total < quota {
            granted[i] += 1;
            total += 1;
        }
    }
    for (d, g) in decisions.iter_mut().zip(granted) {
        d.target_replicas = g;
        d.drop_rate = d.drop_rate.clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: u32) -> JobDecision {
        JobDecision {
            target_replicas: n,
            drop_rate: 0.0,
        }
    }

    #[test]
    fn admission_is_first_come_first_served() {
        // Quota 10, both jobs at 2, both want 8: the rotation-first job
        // gets its full request, the other only the remainder.
        let mut ds = vec![d(8), d(8)];
        admit_quota(&mut ds, &[2, 2], 10, 0);
        assert_eq!(ds[0].target_replicas, 8);
        assert_eq!(ds[1].target_replicas, 2);
        let mut ds = vec![d(8), d(8)];
        admit_quota(&mut ds, &[2, 2], 10, 1);
        assert_eq!(ds[0].target_replicas, 2);
        assert_eq!(ds[1].target_replicas, 8);
    }

    #[test]
    fn admission_allows_downscale_and_reuses_freed_quota() {
        // Job 0 shrinks 6 -> 1, freeing room for job 1 to grow 4 -> 9.
        let mut ds = vec![d(1), d(12)];
        admit_quota(&mut ds, &[6, 4], 10, 0);
        assert_eq!(ds[0].target_replicas, 1);
        assert_eq!(ds[1].target_replicas, 9);
    }

    #[test]
    fn admission_preserves_existing_holdings() {
        // A job never loses replicas it already holds unless it asks.
        let mut ds = vec![d(6), d(6)];
        admit_quota(&mut ds, &[6, 6], 8, 0);
        assert_eq!(ds[0].target_replicas, 6);
        assert_eq!(ds[1].target_replicas, 6);
    }

    #[test]
    fn quota_trims_largest_first() {
        let mut ds = vec![d(10), d(2), d(4)];
        enforce_quota(&mut ds, 12);
        assert_eq!(ds.iter().map(|x| x.target_replicas).sum::<u32>(), 12);
        // The largest allocation absorbed the cuts.
        assert!(ds[0].target_replicas <= 10);
        assert!(ds[1].target_replicas >= 2);
    }

    #[test]
    fn quota_keeps_minimum_one() {
        let mut ds = vec![d(1), d(1), d(1)];
        enforce_quota(&mut ds, 2);
        // Cannot go below 1 each; total stays 3 (quota unsatisfiable).
        assert!(ds.iter().all(|x| x.target_replicas == 1));
    }

    #[test]
    fn zero_targets_raised_to_one() {
        let mut ds = vec![d(0), d(5)];
        enforce_quota(&mut ds, 6);
        assert_eq!(ds[0].target_replicas, 1);
        assert_eq!(ds[1].target_replicas, 5);
    }

    #[test]
    fn drop_rates_clamped() {
        let mut ds = vec![JobDecision {
            target_replicas: 1,
            drop_rate: 1.7,
        }];
        enforce_quota(&mut ds, 4);
        assert_eq!(ds[0].drop_rate, 1.0);
    }
}
