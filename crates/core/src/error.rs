//! Error type for the Faro autoscaler core.
//!
//! [`Error`] (aliased [`FaroError`] workspace-wide) is the shared
//! conversion target for every backend crate's error type: queueing,
//! solver, and forecast errors convert in *typed* (`source()` walks to
//! the original, no stringification), and crates the core cannot
//! depend on (the simulator) convert their setup errors into
//! [`Error::Backend`].

use core::fmt;

/// Result alias for this crate.
pub type Result<T> = core::result::Result<T, Error>;

/// Workspace-wide alias: the one error type control loops and run
/// entry points (`Simulation::runner().run()`) surface.
pub type FaroError = Error;

/// Errors surfaced by the autoscaler and its building blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// A snapshot was structurally invalid (e.g. no jobs, zero quota).
    InvalidSnapshot(String),
    /// An underlying queueing estimate failed.
    Queueing(faro_queueing::Error),
    /// An underlying solver failed.
    Solver(faro_solver::Error),
    /// An underlying forecaster failed.
    Forecast(faro_forecast::Error),
    /// A cluster backend failed to build or actuate (e.g. an invalid
    /// simulation setup or fault plan). Carries the backend's rendered
    /// message: backend crates sit above the core, so their error
    /// types cannot appear here structurally.
    Backend(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::InvalidSnapshot(m) => write!(f, "invalid snapshot: {m}"),
            Error::Queueing(e) => write!(f, "queueing estimation failed: {e}"),
            Error::Solver(e) => write!(f, "optimization failed: {e}"),
            Error::Forecast(e) => write!(f, "forecasting failed: {e}"),
            Error::Backend(m) => write!(f, "cluster backend failed: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Queueing(e) => Some(e),
            Error::Solver(e) => Some(e),
            Error::Forecast(e) => Some(e),
            _ => None,
        }
    }
}

impl From<faro_queueing::Error> for Error {
    fn from(e: faro_queueing::Error) -> Self {
        Error::Queueing(e)
    }
}

impl From<faro_solver::Error> for Error {
    fn from(e: faro_solver::Error) -> Self {
        Error::Solver(e)
    }
}

impl From<faro_forecast::Error> for Error {
    fn from(e: faro_forecast::Error) -> Self {
        Error::Forecast(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = faro_queueing::Error::ZeroReplicas.into();
        assert!(e.to_string().contains("queueing"));
        let e: Error = faro_solver::Error::EmptyProblem.into();
        assert!(e.to_string().contains("optimization"));
        let e: Error = faro_forecast::Error::NotFitted.into();
        assert!(e.to_string().contains("forecasting"));
        assert!(Error::InvalidConfig("x".into()).to_string().contains('x'));
        assert!(Error::Backend("boom".into()).to_string().contains("boom"));
    }

    #[test]
    fn forecast_errors_convert_typed_not_stringified() {
        use std::error::Error as _;
        let e: FaroError = faro_forecast::Error::SeriesTooShort { got: 3, need: 10 }.into();
        assert_eq!(
            e,
            Error::Forecast(faro_forecast::Error::SeriesTooShort { got: 3, need: 10 })
        );
        // The chain walks to the structured source; nothing was
        // flattened into a message string.
        assert!(e.source().is_some());
    }
}
