//! Error type for the Faro autoscaler core.
//!
//! [`Error`] (aliased [`FaroError`] workspace-wide) is the shared
//! conversion target for every backend crate's error type: queueing,
//! solver, and forecast errors convert in *typed* (`source()` walks to
//! the original, no stringification), and crates the core cannot
//! depend on (the simulator) convert their setup errors into
//! [`Error::Backend`].

use crate::units::DurationMs;
use core::fmt;

/// Result alias for this crate.
pub type Result<T> = core::result::Result<T, Error>;

/// A failure at the control-plane/world boundary: what a
/// `ClusterBackend` call (`observe`/`apply`) can report instead of a
/// value.
///
/// The taxonomy is deliberately small and *actionable* — each variant
/// maps to a distinct recovery strategy in the resilient driver
/// (`faro-control`): timeouts and unavailability are retried with
/// backoff, a partial apply is retried to convergence (apply is
/// idempotent), and a stale snapshot is tolerated up to a staleness
/// window before the round degrades.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The call did not complete within its deadline.
    Timeout {
        /// How long the call ran before the deadline cut it off.
        elapsed: DurationMs,
    },
    /// The backend API was unreachable or refused the call.
    Unavailable {
        /// Backend-specific detail (transport error, HTTP status, ...).
        reason: String,
    },
    /// `apply` actuated only a prefix of the desired state before
    /// failing. Because apply is idempotent ("absent means untouched",
    /// re-applying a satisfied state is a no-op), retrying the full
    /// desired state converges to the same cluster state as one
    /// successful apply.
    PartialApply {
        /// Jobs whose decision was applied before the failure.
        applied: u32,
    },
    /// `observe` produced a snapshot older than the caller can use.
    StaleSnapshot {
        /// Age of the snapshot relative to the backend clock.
        age: DurationMs,
    },
}

impl BackendError {
    /// Whether retrying the same call can possibly succeed. Every
    /// variant in the current taxonomy is transient; the method exists
    /// so future non-retryable variants (auth failures, invalid
    /// desired states) get a single dispatch point.
    pub fn is_retryable(&self) -> bool {
        match self {
            BackendError::Timeout { .. }
            | BackendError::Unavailable { .. }
            | BackendError::PartialApply { .. }
            | BackendError::StaleSnapshot { .. } => true,
        }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Timeout { elapsed } => {
                write!(f, "backend call timed out after {elapsed}")
            }
            BackendError::Unavailable { reason } => {
                write!(f, "backend unavailable: {reason}")
            }
            BackendError::PartialApply { applied } => {
                write!(f, "apply actuated only {applied} job(s) before failing")
            }
            BackendError::StaleSnapshot { age } => {
                write!(f, "snapshot is stale by {age}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// Workspace-wide alias: the one error type control loops and run
/// entry points (`Simulation::runner().run()`) surface.
pub type FaroError = Error;

/// Errors surfaced by the autoscaler and its building blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// A snapshot was structurally invalid (e.g. no jobs, zero quota).
    InvalidSnapshot(String),
    /// An underlying queueing estimate failed.
    Queueing(faro_queueing::Error),
    /// An underlying solver failed.
    Solver(faro_solver::Error),
    /// An underlying forecaster failed.
    Forecast(faro_forecast::Error),
    /// A cluster backend failed to build or actuate (e.g. an invalid
    /// simulation setup or fault plan). Carries the backend's rendered
    /// message: backend crates sit above the core, so their error
    /// types cannot appear here structurally.
    Backend(String),
    /// A cluster backend API call failed at the control-plane/world
    /// boundary. Unlike [`Error::Backend`] (setup/build failures,
    /// stringified), this is the *typed* runtime failure surface:
    /// `source()` walks to the structured [`BackendError`].
    BackendApi(BackendError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::InvalidSnapshot(m) => write!(f, "invalid snapshot: {m}"),
            Error::Queueing(e) => write!(f, "queueing estimation failed: {e}"),
            Error::Solver(e) => write!(f, "optimization failed: {e}"),
            Error::Forecast(e) => write!(f, "forecasting failed: {e}"),
            Error::Backend(m) => write!(f, "cluster backend failed: {m}"),
            Error::BackendApi(e) => write!(f, "cluster backend API call failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Queueing(e) => Some(e),
            Error::Solver(e) => Some(e),
            Error::Forecast(e) => Some(e),
            Error::BackendApi(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BackendError> for Error {
    fn from(e: BackendError) -> Self {
        Error::BackendApi(e)
    }
}

impl From<faro_queueing::Error> for Error {
    fn from(e: faro_queueing::Error) -> Self {
        Error::Queueing(e)
    }
}

impl From<faro_solver::Error> for Error {
    fn from(e: faro_solver::Error) -> Self {
        Error::Solver(e)
    }
}

impl From<faro_forecast::Error> for Error {
    fn from(e: faro_forecast::Error) -> Self {
        Error::Forecast(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = faro_queueing::Error::ZeroReplicas.into();
        assert!(e.to_string().contains("queueing"));
        let e: Error = faro_solver::Error::EmptyProblem.into();
        assert!(e.to_string().contains("optimization"));
        let e: Error = faro_forecast::Error::NotFitted.into();
        assert!(e.to_string().contains("forecasting"));
        assert!(Error::InvalidConfig("x".into()).to_string().contains('x'));
        assert!(Error::Backend("boom".into()).to_string().contains("boom"));
    }

    #[test]
    fn forecast_errors_convert_typed_not_stringified() {
        use std::error::Error as _;
        let e: FaroError = faro_forecast::Error::SeriesTooShort { got: 3, need: 10 }.into();
        assert_eq!(
            e,
            Error::Forecast(faro_forecast::Error::SeriesTooShort { got: 3, need: 10 })
        );
        // The chain walks to the structured source; nothing was
        // flattened into a message string.
        assert!(e.source().is_some());
    }

    #[test]
    fn backend_errors_convert_typed_and_display() {
        use std::error::Error as _;
        let api = BackendError::PartialApply { applied: 3 };
        assert!(api.is_retryable());
        assert!(api.to_string().contains("3 job(s)"));
        let e: FaroError = api.clone().into();
        assert_eq!(e, Error::BackendApi(api));
        assert!(e.source().is_some());
        let t = BackendError::Timeout {
            elapsed: DurationMs::from_millis(1500),
        };
        assert!(t.to_string().contains("1.5s"), "{t}");
        let s = BackendError::StaleSnapshot {
            age: DurationMs::from_secs(40.0),
        };
        assert!(s.to_string().contains("stale"), "{s}");
        assert!(BackendError::Unavailable {
            reason: "conn refused".into()
        }
        .to_string()
        .contains("conn refused"));
    }
}
