//! Per-job utility functions distilled from SLOs (paper Sec. 3.1).
//!
//! The original utility is a step function — 1 when the tail latency
//! meets the SLO target, 0 otherwise. Step functions create plateaus
//! that defeat optimization solvers, so Faro relaxes them to
//! `U = min((s / l)^alpha, 1)`, which approaches the step as
//! `alpha -> infinity` (Figure 4a) and lower-bounds the SLO satisfaction
//! rate (Figure 4b).

use serde::{Deserialize, Serialize};

/// The original step utility: 1 iff the latency meets the target.
///
/// # Examples
///
/// ```
/// use faro_core::utility::step_utility;
///
/// assert_eq!(step_utility(0.5, 0.72), 1.0);
/// assert_eq!(step_utility(0.9, 0.72), 0.0);
/// ```
pub fn step_utility(latency: f64, slo: f64) -> f64 {
    if latency <= slo {
        1.0
    } else {
        0.0
    }
}

/// The relaxed inverse-power utility of Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelaxedUtility {
    /// Sharpness exponent; the relaxed utility approaches the step
    /// function as `alpha` grows.
    pub alpha: f64,
}

impl Default for RelaxedUtility {
    /// A moderate sharpness that keeps usable gradients (see
    /// `DESIGN.md`).
    fn default() -> Self {
        Self { alpha: 4.0 }
    }
}

impl RelaxedUtility {
    /// Creates a relaxed utility with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is not finite and positive.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        Self { alpha }
    }

    /// `U(l, s) = min((s/l)^alpha, 1)`; 0 for infinite latency, 1 for
    /// non-positive latency (instantaneous response).
    pub fn value(&self, latency: f64, slo: f64) -> f64 {
        if latency <= 0.0 {
            return 1.0;
        }
        if latency.is_infinite() || latency.is_nan() {
            return 0.0;
        }
        (slo / latency).powf(self.alpha).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_is_binary() {
        assert_eq!(step_utility(0.72, 0.72), 1.0); // Boundary meets SLO.
        assert_eq!(step_utility(0.721, 0.72), 0.0);
        assert_eq!(step_utility(f64::INFINITY, 0.72), 0.0);
    }

    #[test]
    fn relaxed_is_one_at_or_below_slo() {
        let u = RelaxedUtility::default();
        for l in [0.0, 0.1, 0.5, 0.72] {
            assert_eq!(u.value(l, 0.72), 1.0, "latency {l}");
        }
    }

    #[test]
    fn relaxed_decreases_beyond_slo() {
        let u = RelaxedUtility::default();
        let mut prev = 1.0;
        for i in 1..20 {
            let l = 0.72 + 0.1 * f64::from(i);
            let v = u.value(l, 0.72);
            assert!(v < prev, "latency {l}");
            assert!(v > 0.0);
            prev = v;
        }
        assert_eq!(u.value(f64::INFINITY, 0.72), 0.0);
    }

    #[test]
    fn higher_alpha_approaches_step() {
        // Figure 4a: larger alpha hugs the step function.
        let l = 1.0;
        let s = 0.5;
        let mut prev = 1.0;
        for alpha in [1.0, 2.0, 4.0, 8.0, 32.0] {
            let v = RelaxedUtility::new(alpha).value(l, s);
            assert!(v < prev, "alpha {alpha}");
            prev = v;
        }
        assert!(RelaxedUtility::new(64.0).value(l, s) < 1e-15);
    }

    #[test]
    fn relaxed_lower_bounds_step_beyond_slo_only() {
        // For l > s the relaxed utility is positive where the step is 0;
        // for l <= s both are 1. The *step* utility of a met SLO never
        // exceeds relaxed utility.
        let u = RelaxedUtility::default();
        for l in [0.1, 0.5, 0.72, 0.9, 2.0] {
            assert!(u.value(l, 0.72) >= step_utility(l, 0.72));
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = RelaxedUtility::new(0.0);
    }
}
