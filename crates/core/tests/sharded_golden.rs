//! Golden determinism and quality contracts for the sharded solver.
//!
//! The sharded path ships with three promises:
//!
//! 1. **Thread invariance** — a solve with `parallelism: 8` is
//!    bit-identical (replicas, drop-rate bits, record, spans) to the
//!    same solve with `parallelism: 1`, for any workload. Parallelism
//!    changes wall-clock, never bytes.
//! 2. **Bounded utility gap** — sharding loses only a bounded slice of
//!    cluster utility versus the flat global solve (the paper's
//!    grouped-solve trade, Sec 3.4).
//! 3. **Clean rounds are free and inert** — re-solving an unchanged
//!    cluster performs zero shard solves and returns the exact bytes of
//!    the previous answer.

use faro_core::objective::ClusterObjective;
use faro_core::opt::{Fidelity, JobWorkload, MultiTenantProblem};
use faro_core::sharded::{ShardConfig, ShardedSolver};
use faro_core::types::{ResourceModel, Slo};
use faro_core::units::ReplicaCount;
use faro_solver::Cobyla;
use proptest::prelude::*;

fn workload(lambdas: &[f64]) -> Vec<JobWorkload> {
    lambdas
        .iter()
        .map(|&l| JobWorkload::constant(l, 0.180, Slo::paper_default(), 1.0))
        .collect()
}

fn resources(jobs: usize, per_job: u32) -> ResourceModel {
    ResourceModel::replicas(ReplicaCount::new(jobs as u32 * per_job))
}

/// Solves `jobs` once with the given parallelism and returns every
/// observable byte of the answer.
fn solve_with_parallelism(
    jobs: &[JobWorkload],
    shards: usize,
    parallelism: usize,
    objective: ClusterObjective,
) -> (Vec<u32>, Vec<u64>, String) {
    let cfg = ShardConfig {
        shards,
        parallelism,
        ..ShardConfig::default()
    };
    let mut solver = ShardedSolver::new(cfg, 17);
    let cobyla = Cobyla::fast();
    let current = vec![1u32; jobs.len()];
    let out = solver
        .solve(
            jobs,
            resources(jobs.len(), 4),
            objective,
            Fidelity::Relaxed,
            &cobyla,
            &current,
        )
        .expect("sharded solve succeeds");
    let drop_bits = out.drop_rates.iter().map(|d| d.to_bits()).collect();
    let meta = format!("{:?}|{:?}", out.record, out.shard_spans);
    (out.replicas, drop_bits, meta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Promise 1: the merge is bit-stable under any thread count.
    #[test]
    fn parallel_solves_are_bit_identical_to_sequential(
        lambdas in prop::collection::vec(2.0f64..40.0, 4..20),
        shards in 1usize..6,
        objective_pick in 0u32..2,
    ) {
        let jobs = workload(&lambdas);
        let objective = if objective_pick == 1 {
            ClusterObjective::PenaltySum
        } else {
            ClusterObjective::Sum
        };
        let seq = solve_with_parallelism(&jobs, shards, 1, objective);
        let par = solve_with_parallelism(&jobs, shards, 8, objective);
        prop_assert_eq!(&seq.0, &par.0, "replica vectors diverged");
        prop_assert_eq!(&seq.1, &par.1, "drop-rate bits diverged");
        prop_assert_eq!(&seq.2, &par.2, "record/span metadata diverged");
    }

    /// Promise 2: sharding keeps the cluster objective within a bounded
    /// gap of the flat global solve on the same workload. The bound is
    /// deliberately loose (10%) — the sweep in `scale_sweep` tracks the
    /// real figure (~2%) — so this property never flakes while still
    /// catching a broken split or merge outright.
    #[test]
    fn sharded_utility_stays_within_bounded_gap_of_global(
        lambdas in prop::collection::vec(2.0f64..40.0, 6..16),
        shards in 2usize..5,
    ) {
        let jobs = workload(&lambdas);
        let res = resources(jobs.len(), 4);
        let cobyla = Cobyla::fast();
        let current = vec![1u32; jobs.len()];

        let problem = MultiTenantProblem::new(
            jobs.clone(),
            res.clone(),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        ).expect("valid problem");
        let alloc = problem.solve(&cobyla, &current).expect("global solve");
        let mut global = problem.integerize(&alloc);
        problem.shrink(&mut global, &alloc.drop_rates);

        let cfg = ShardConfig { shards, parallelism: 1, ..ShardConfig::default() };
        let mut sharded = ShardedSolver::new(cfg, 17);
        let out = sharded
            .solve(&jobs, res.clone(), ClusterObjective::Sum, Fidelity::Relaxed, &cobyla, &current)
            .expect("sharded solve");

        let zeros = vec![0.0; jobs.len()];
        let g = problem.cluster_value_integer(&global, &zeros);
        let s = problem.cluster_value_integer(&out.replicas, &zeros);
        prop_assert!(
            s >= g - 0.10 * g.abs().max(1.0),
            "sharded {s:.4} fell more than 10% below global {g:.4}"
        );
    }
}

/// Promise 3: an unchanged cluster re-solves nothing and the answer is
/// the cached bytes, solver untouched.
#[test]
fn clean_round_returns_cached_bytes_with_zero_solves() {
    let jobs = workload(&[4.0, 9.0, 14.0, 19.0, 24.0, 29.0, 6.0, 11.0]);
    let cfg = ShardConfig {
        shards: 3,
        parallelism: 1,
        ..ShardConfig::default()
    };
    let mut solver = ShardedSolver::new(cfg, 17);
    let cobyla = Cobyla::fast();
    let current = vec![1u32; jobs.len()];
    let res = resources(jobs.len(), 4);
    let cold = solver
        .solve(
            &jobs,
            res.clone(),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
            &cobyla,
            &current,
        )
        .expect("cold solve");
    assert_eq!(cold.record.solved, 3, "cold round solves every shard");
    let warm = solver
        .solve(
            &jobs,
            res.clone(),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
            &cobyla,
            &cold.replicas,
        )
        .expect("warm solve");
    assert_eq!(warm.record.solved, 0, "clean round re-solves nothing");
    assert_eq!(warm.record.split_evals, 0, "clean round skips the split");
    assert_eq!(warm.record.cache_hit_jobs, jobs.len() as u32);
    assert_eq!(warm.replicas, cold.replicas);
    let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&warm.drop_rates), bits(&cold.drop_rates));
}

/// Two fresh solvers with the same seed and config produce the same
/// bytes — the sharded path inherits the repo's replay contract.
#[test]
fn fresh_solvers_with_equal_seeds_agree_exactly() {
    let jobs = workload(&[3.0, 8.0, 13.0, 21.0, 34.0, 5.0]);
    let a = solve_with_parallelism(&jobs, 4, 1, ClusterObjective::Sum);
    let b = solve_with_parallelism(&jobs, 4, 1, ClusterObjective::Sum);
    assert_eq!(a, b);
}
