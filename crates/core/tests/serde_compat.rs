//! Wire-format back-compat: JSON emitted before the replica-class
//! refactor (and committed to `results/`) must keep deserializing, and
//! the modern classed format must round-trip.
//!
//! The legacy byte strings below are copied verbatim from what the
//! pre-class derive emitted — the same bytes locked down on the write
//! side by `single_class_wire_format_is_unchanged` in `types.rs`.

use faro_core::types::{
    ClassAlloc, ClusterSnapshot, DesiredState, JobDecision, JobId, JobObservation, JobSpec,
    ReplicaClass, ResourceModel,
};
use faro_core::units::{RatePerMin, SimTimeMs};
use faro_core::ReplicaCount;
use std::sync::Arc;

#[test]
fn legacy_single_class_json_still_deserializes() {
    // ResourceModel without cluster_gpu/classes -> homogeneous regime.
    let v = serde_json::from_str(
        "{\"cpu_per_replica\":1,\"mem_per_replica\":1,\"cluster_cpu\":4,\"cluster_mem\":4}",
    )
    .unwrap();
    let model = ResourceModel::from_json(&v).unwrap();
    assert_eq!(model, ResourceModel::replicas(ReplicaCount::new(4)));
    assert!(!model.has_classes());

    // JobDecision without classes -> class-free decision.
    let v = serde_json::from_str("{\"target_replicas\":3,\"drop_rate\":0}").unwrap();
    assert_eq!(
        JobDecision::from_json(&v).unwrap(),
        JobDecision::replicas(3)
    );

    // JobSpec without class_affinity -> run-anywhere spec.
    let v = serde_json::from_str(
        "{\"name\":\"b\",\"slo\":{\"latency\":0.4,\"percentile\":0.99},\
         \"priority\":1,\"processing_time\":0.1}",
    )
    .unwrap();
    assert_eq!(JobSpec::from_json(&v).unwrap(), JobSpec::resnet18("b"));
}

#[test]
fn classed_values_round_trip() {
    let model = ResourceModel::heterogeneous(
        vec![ReplicaClass::gpu("gpu"), ReplicaClass::cpu("cpu", 3.0)],
        16.0,
        4.0,
        32.0,
    );
    let json = serde_json::to_string(&model).unwrap();
    let parsed = ResourceModel::from_json(&serde_json::from_str(&json).unwrap()).unwrap();
    assert_eq!(parsed, model);

    let decision = JobDecision::classed(ClassAlloc::from_counts(&[1, 2]).unwrap());
    let json = serde_json::to_string(&decision).unwrap();
    let parsed = JobDecision::from_json(&serde_json::from_str(&json).unwrap()).unwrap();
    assert_eq!(parsed, decision);

    let mut spec = JobSpec::resnet34("pinned");
    spec.class_affinity = vec!["gpu".to_string()];
    let json = serde_json::to_string(&spec).unwrap();
    let parsed = JobSpec::from_json(&serde_json::from_str(&json).unwrap()).unwrap();
    assert_eq!(parsed, spec);
}

#[test]
fn malformed_json_is_rejected_not_defaulted() {
    // A wrong-typed field must fail the parse, not silently fall back.
    let v = serde_json::from_str("{\"target_replicas\":\"three\",\"drop_rate\":0}").unwrap();
    assert!(JobDecision::from_json(&v).is_none());
    let v = serde_json::from_str("{\"target_replicas\":3,\"drop_rate\":0,\"classes\":3}").unwrap();
    assert!(JobDecision::from_json(&v).is_none());
    let v = serde_json::from_str("{\"cpu_per_replica\":1}").unwrap();
    assert!(ResourceModel::from_json(&v).is_none());
}

#[test]
fn cluster_snapshot_round_trips_byte_identically() {
    // The full composite the live wire ships as `"snapshot"`: it must
    // survive serialize → parse → re-serialize with identical bytes,
    // because the actuation protocol's golden tests build on it.
    let snapshot = ClusterSnapshot {
        now: SimTimeMs::from_millis(30_000),
        resources: ResourceModel::replicas(ReplicaCount::new(12)),
        jobs: vec![JobObservation {
            spec: Arc::new(JobSpec::resnet18("wire")),
            target_replicas: 3,
            ready_replicas: 2,
            queue_len: 4,
            arrival_rate_history: Arc::new(vec![RatePerMin::new(120.0), RatePerMin::new(360.0)]),
            recent_arrival_rate: 6.5,
            mean_processing_time: 0.1,
            recent_tail_latency: 0.35,
            drop_rate: 0.0,
            class_target: None,
            class_ready: None,
        }],
    };
    let json = serde_json::to_string(&snapshot).unwrap();
    let parsed = ClusterSnapshot::from_json(&serde_json::from_str(&json).unwrap()).unwrap();
    assert_eq!(parsed, snapshot);
    assert_eq!(serde_json::to_string(&parsed).unwrap(), json);
}

#[test]
fn desired_state_round_trips_and_accepts_legacy_bodies() {
    let mut desired = DesiredState::new();
    desired.set(JobId::new(0), JobDecision::replicas(4));
    desired.set(
        JobId::new(2),
        JobDecision::classed(ClassAlloc::from_counts(&[1, 3]).unwrap()).with_drop_rate(0.1),
    );
    let json = serde_json::to_string(&desired).unwrap();
    let parsed = DesiredState::from_json(&serde_json::from_str(&json).unwrap()).unwrap();
    assert_eq!(parsed, desired);
    assert_eq!(serde_json::to_string(&parsed).unwrap(), json);

    // A pre-class actuation body (no `classes` anywhere) still parses.
    let legacy = "[{\"job\":0,\"target_replicas\":7,\"drop_rate\":0}]";
    let parsed = DesiredState::from_json(&serde_json::from_str(legacy).unwrap()).unwrap();
    assert_eq!(parsed.get(JobId::new(0)), Some(JobDecision::replicas(7)));

    // Duplicate job indices keep the last entry (map semantics), so a
    // sloppy producer cannot smuggle in two decisions for one job.
    let dup = "[{\"job\":1,\"target_replicas\":2,\"drop_rate\":0},\
               {\"job\":1,\"target_replicas\":9,\"drop_rate\":0}]";
    let parsed = DesiredState::from_json(&serde_json::from_str(dup).unwrap()).unwrap();
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed.get(JobId::new(1)), Some(JobDecision::replicas(9)));
}

#[test]
fn committed_trace_still_parses() {
    // Every line of the committed telemetry trace — all emitted before
    // the class refactor — must stay parseable JSON with the envelope
    // shape the dashboards consume.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/faro_trace.jsonl"
    );
    let trace = std::fs::read_to_string(path).expect("committed trace exists");
    let mut lines = 0usize;
    for line in trace.lines().filter(|l| !l.trim().is_empty()) {
        let v = serde_json::from_str(line).expect("trace line is valid JSON");
        assert!(v.get("at").and_then(|at| at.as_f64()).is_some());
        assert!(v.get("event").is_some());
        lines += 1;
    }
    assert!(lines > 100, "trace unexpectedly short: {lines} lines");
}
