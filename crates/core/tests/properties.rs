//! Property-based tests for the Faro core building blocks.

use faro_core::admission::{Admission, ClampToQuota, RotatingQuota};
use faro_core::objective::{ClusterObjective, JobUtility};
use faro_core::penalty::{phi, relaxed_penalty, step_penalty, PenaltyShape};
use faro_core::types::{
    ClusterSnapshot, DesiredState, JobDecision, JobId, JobObservation, JobSpec, ResourceModel,
};
use faro_core::utility::{step_utility, RelaxedUtility};
use proptest::prelude::*;
use std::sync::Arc;

/// A snapshot whose jobs currently hold `prev` targets under `quota`.
fn snap(prev: &[u32], quota: u32) -> ClusterSnapshot {
    let jobs = prev
        .iter()
        .map(|&p| JobObservation {
            spec: Arc::new(JobSpec::resnet34("p")),
            target_replicas: p,
            ready_replicas: p,
            queue_len: 0,
            arrival_rate_history: Arc::new(vec![]),
            recent_arrival_rate: 0.0,
            mean_processing_time: 0.18,
            recent_tail_latency: 0.1,
            drop_rate: 0.0,
            class_target: None,
            class_ready: None,
        })
        .collect();
    ClusterSnapshot {
        now: faro_core::units::SimTimeMs::ZERO,
        resources: ResourceModel::replicas(faro_core::units::ReplicaCount::new(quota)),
        jobs,
    }
}

fn state(targets: &[u32]) -> DesiredState {
    targets
        .iter()
        .enumerate()
        .map(|(i, &t)| (JobId::new(i), JobDecision::replicas(t)))
        .collect()
}

proptest! {
    /// Relaxed utility is bounded, monotone in latency, and dominates
    /// the step utility.
    #[test]
    fn relaxed_utility_properties(
        latency in 0.0f64..10.0,
        slo in 0.05f64..2.0,
        alpha in 0.5f64..32.0,
    ) {
        let u = RelaxedUtility::new(alpha);
        let v = u.value(latency, slo);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!(v >= step_utility(latency, slo));
        let v2 = u.value(latency + 0.1, slo);
        prop_assert!(v2 <= v + 1e-12);
    }

    /// Penalty multipliers: phi in [0,1], monotone non-increasing in
    /// drop rate, relaxed never exceeds the step penalty's phi by more
    /// than the interpolation can justify (both share the anchors).
    #[test]
    fn penalty_properties(d in 0.0f64..=1.0) {
        for shape in [PenaltyShape::Step, PenaltyShape::Relaxed] {
            let v = phi(d, shape);
            prop_assert!((0.0..=1.0).contains(&v));
            let v2 = phi((d + 0.02).min(1.0), shape);
            prop_assert!(v2 <= v + 1e-12, "{shape:?} phi not monotone at {d}");
        }
        // The relaxed penalty is at least the step penalty (pessimistic
        // between anchors) for availability in the credit bands.
        let a = 1.0 - d;
        prop_assert!(relaxed_penalty(a) + 1e-12 >= step_penalty(a) - 0.5);
    }

    /// Every cluster objective is invariant under job permutation.
    #[test]
    fn objectives_permutation_invariant(
        utils in prop::collection::vec((0.0f64..=1.0, 0.0f64..=1.0, 0.1f64..4.0), 2..8),
    ) {
        let jobs: Vec<JobUtility> = utils
            .iter()
            .map(|&(u, e, p)| JobUtility { utility: u, effective_utility: e.min(u), priority: p })
            .collect();
        let mut reversed = jobs.clone();
        reversed.reverse();
        for obj in [
            ClusterObjective::Sum,
            ClusterObjective::Fair,
            ClusterObjective::FairSum { gamma: 2.0 },
            ClusterObjective::PenaltySum,
            ClusterObjective::PenaltyFairSum { gamma: 2.0 },
        ] {
            let a = obj.aggregate(&jobs);
            let b = obj.aggregate(&reversed);
            prop_assert!((a - b).abs() < 1e-12, "{obj:?}");
        }
    }

    /// Raising any job's utility never lowers Sum-family objectives.
    #[test]
    fn sum_objectives_monotone(
        utils in prop::collection::vec(0.0f64..0.9, 2..6),
        bump_idx in 0usize..6,
        bump in 0.01f64..0.1,
    ) {
        let idx = bump_idx % utils.len();
        let jobs: Vec<JobUtility> = utils
            .iter()
            .map(|&u| JobUtility { utility: u, effective_utility: u, priority: 1.0 })
            .collect();
        let mut bumped = jobs.clone();
        bumped[idx].utility += bump;
        bumped[idx].effective_utility += bump;
        for obj in [ClusterObjective::Sum, ClusterObjective::PenaltySum] {
            prop_assert!(obj.aggregate(&bumped) >= obj.aggregate(&jobs));
        }
    }

    /// ClampToQuota: output within quota when feasible, all >= 1,
    /// the outcome's accounting matches the final state.
    #[test]
    fn clamp_admission_contract(
        targets in prop::collection::vec(0u32..20, 1..10),
        quota in 1u32..64,
    ) {
        let mut ds = state(&targets);
        let zeros = vec![0u32; targets.len()];
        let out = ClampToQuota.admit(&snap(&zeros, quota), &mut ds);
        let total = ds.total_replicas();
        let n = ds.len() as u32;
        prop_assert!(ds.targets().all(|t| t >= 1));
        if quota >= n {
            prop_assert!(total <= quota.max(n), "total {total} quota {quota}");
        }
        prop_assert_eq!(out.granted_replicas, total);
        prop_assert_eq!(out.quota, quota);
        prop_assert_eq!(out.unsatisfiable(), total > quota);
    }

    /// RotatingQuota: never evicts holdings, never admits increases
    /// past the quota, downscales always honoured — regardless of how
    /// many rounds have advanced the rotation.
    #[test]
    fn rotating_admission_contract(
        pairs in prop::collection::vec((1u32..12, 1u32..12), 1..8),
        quota in 4u32..40,
        rounds in 1usize..8,
    ) {
        let prev: Vec<u32> = pairs.iter().map(|&(p, _)| p).collect();
        let wants: Vec<u32> = pairs.iter().map(|&(_, w)| w).collect();
        let snapshot = snap(&prev, quota);
        let mut admission = RotatingQuota::new();
        let mut ds = DesiredState::new();
        for _ in 0..rounds {
            ds = state(&wants);
            admission.admit(&snapshot, &mut ds);
        }
        let prev_total: u32 = prev.iter().sum();
        let total = ds.total_replicas();
        for (i, (id, d)) in ds.iter().enumerate() {
            prop_assert_eq!(id, JobId::new(i));
            let want = pairs[i].1;
            // Granted lies between min(want, prev) and want.
            prop_assert!(d.target_replicas >= want.min(prev[i]).max(1));
            prop_assert!(d.target_replicas <= want.max(1));
        }
        // No growth beyond max(quota, existing holdings).
        prop_assert!(total <= quota.max(prev_total));
    }
}
