//! Integration tests for the resilient driver and the chaos backend:
//! retry recovery, breaker schedules, degraded rounds, drift repair,
//! and the no-mutation guarantee for breaker-open rounds.

use faro_control::{
    ActuationReport, BackendError, BreakerState, ChaosBackend, ChaosPlan, Clock, ClusterBackend,
    Reconciler, ResilienceConfig, ResilientDriver, RetryPolicy,
};
use faro_core::admission::ClampToQuota;
use faro_core::types::{
    ClusterSnapshot, DesiredState, JobDecision, JobObservation, JobSpec, ResourceModel,
};
use faro_core::units::{DurationMs, RatePerMin, ReplicaCount, SimTimeMs};
use faro_core::Policy;
use faro_telemetry::TelemetryEvent;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

/// An in-memory cluster with a scripted failure schedule: each backend
/// call pops the next planned error (`None` = succeed). Counts calls
/// and mutations so tests can assert what a round touched.
struct ScriptBackend {
    now: SimTimeMs,
    tick: DurationMs,
    end: SimTimeMs,
    quota: u32,
    targets: Vec<u32>,
    observe_plan: VecDeque<Option<BackendError>>,
    apply_plan: VecDeque<Option<BackendError>>,
    observe_calls: u64,
    apply_calls: u64,
    mutations: u64,
    /// External interference: after each successful apply, knock this
    /// many replicas off job 0 (drift for the next observe to catch).
    sabotage: u32,
}

impl ScriptBackend {
    fn new(rounds: u32, jobs: usize) -> Self {
        Self {
            now: SimTimeMs::from_secs(-10.0),
            tick: DurationMs::from_secs(10.0),
            end: SimTimeMs::from_secs(10.0 * f64::from(rounds)),
            quota: 16,
            targets: vec![2; jobs],
            observe_plan: VecDeque::new(),
            apply_plan: VecDeque::new(),
            observe_calls: 0,
            apply_calls: 0,
            mutations: 0,
            sabotage: 0,
        }
    }

    fn unavailable() -> BackendError {
        BackendError::Unavailable {
            reason: "scripted".into(),
        }
    }
}

impl Clock for ScriptBackend {
    fn now(&self) -> SimTimeMs {
        self.now
    }

    fn advance(&mut self) -> Option<SimTimeMs> {
        let next = self.now + self.tick;
        if next >= self.end {
            return None;
        }
        self.now = next;
        Some(next)
    }
}

impl ClusterBackend for ScriptBackend {
    fn observe(&mut self) -> Result<ClusterSnapshot, BackendError> {
        self.observe_calls += 1;
        if let Some(Some(e)) = self.observe_plan.pop_front() {
            return Err(e);
        }
        let jobs = self
            .targets
            .iter()
            .map(|&t| JobObservation {
                spec: Arc::new(JobSpec::resnet34("scripted")),
                target_replicas: t,
                ready_replicas: t,
                queue_len: 0,
                arrival_rate_history: Arc::new(vec![RatePerMin::new(60.0); 10]),
                recent_arrival_rate: 1.0,
                mean_processing_time: 0.18,
                recent_tail_latency: 0.2,
                drop_rate: 0.0,
                class_target: None,
                class_ready: None,
            })
            .collect();
        Ok(ClusterSnapshot {
            now: self.now,
            resources: ResourceModel::replicas(ReplicaCount::new(self.quota)),
            jobs,
        })
    }

    fn apply(&mut self, desired: &DesiredState) -> Result<ActuationReport, BackendError> {
        self.apply_calls += 1;
        if let Some(Some(e)) = self.apply_plan.pop_front() {
            return Err(e);
        }
        let mut report = ActuationReport::default();
        for (id, d) in desired.iter() {
            if let Some(t) = self.targets.get_mut(id.index()) {
                if *t != d.target_replicas {
                    self.mutations += 1;
                }
                report.replicas_started += d.target_replicas.saturating_sub(*t);
                *t = d.target_replicas;
                report.jobs_applied += 1;
            } else {
                report.jobs_failed += 1;
            }
        }
        if self.sabotage > 0 {
            if let Some(t) = self.targets.first_mut() {
                *t = t.saturating_sub(self.sabotage);
            }
        }
        Ok(report)
    }
}

/// Requests a fixed target for every job, every round.
struct Want(u32);

impl Policy for Want {
    fn name(&self) -> &str {
        "want"
    }

    fn decide(&mut self, snapshot: &ClusterSnapshot) -> DesiredState {
        snapshot
            .job_ids()
            .map(|id| (id, JobDecision::replicas(self.0)))
            .collect()
    }
}

fn reconciler(target: u32) -> Reconciler {
    Reconciler::new(Box::new(Want(target)), Box::new(ClampToQuota))
}

#[test]
fn clean_backend_matches_the_plain_reconciler() {
    let mut plain = reconciler(4);
    let plain_stats = plain.run(&mut ScriptBackend::new(10, 2)).unwrap();

    let mut rec = reconciler(4);
    let mut driver = ResilientDriver::new(ScriptBackend::new(10, 2), ResilienceConfig::default());
    let stats = driver.run(&mut rec);

    assert_eq!(stats, plain_stats, "no faults: the driver is transparent");
    assert_eq!(driver.stats().ok_rounds, 10);
    assert_eq!(driver.stats().skipped_rounds, 0);
    assert_eq!(
        driver.stats().observe_retries + driver.stats().apply_retries,
        0
    );
    assert_eq!(driver.breaker_state(), BreakerState::Closed);
}

#[test]
fn transient_errors_are_retried_within_the_round() {
    let mut backend = ScriptBackend::new(6, 2);
    // First round: observe fails twice then succeeds; apply fails once.
    backend.observe_plan = VecDeque::from(vec![
        Some(ScriptBackend::unavailable()),
        Some(ScriptBackend::unavailable()),
        None,
    ]);
    backend.apply_plan = VecDeque::from(vec![Some(ScriptBackend::unavailable())]);
    let mut rec = reconciler(4);
    let mut driver = ResilientDriver::new(backend, ResilienceConfig::default());
    let stats = driver.run(&mut rec);

    assert_eq!(stats.rounds, 6, "every round completed despite faults");
    assert_eq!(driver.stats().ok_rounds, 6);
    assert_eq!(driver.stats().observe_retries, 2);
    assert_eq!(driver.stats().apply_retries, 1);
    assert_eq!(
        driver.stats().observe_failures + driver.stats().apply_failures,
        0
    );
    assert_eq!(driver.backend().targets, vec![4, 4]);
}

#[test]
fn retry_schedules_replay_byte_identically() {
    let run = || {
        let mut backend = ScriptBackend::new(6, 2);
        backend.observe_plan = VecDeque::from(vec![
            Some(ScriptBackend::unavailable()),
            None,
            Some(ScriptBackend::unavailable()),
        ]);
        let mut rec = reconciler(3);
        let mut sink = faro_telemetry::TraceSink::new();
        let cfg = ResilienceConfig {
            jitter_seed: 7,
            ..ResilienceConfig::default()
        };
        let mut driver = ResilientDriver::new(backend, cfg);
        driver.run_with(&mut rec, &mut sink);
        sink.to_jsonl()
    };
    let a = run();
    assert!(a.contains("BackendRetry"), "retries were traced");
    assert_eq!(a, run(), "same seed, same failures: same trace bytes");
}

#[test]
fn degraded_rounds_plan_on_the_cached_snapshot_then_carry_forward() {
    let mut backend = ScriptBackend::new(8, 2);
    // Round 1 observes fine; every later observe fails (4 attempts per
    // round under the default policy).
    backend.observe_plan = VecDeque::from(
        std::iter::once(None)
            .chain(std::iter::repeat_with(|| Some(ScriptBackend::unavailable())).take(200))
            .collect::<Vec<_>>(),
    );
    let mut rec = reconciler(5);
    // A staleness window of one tick: round 2 can still plan on round
    // 1's snapshot; round 3 onward must carry forward.
    let cfg = ResilienceConfig {
        staleness_window: DurationMs::from_secs(10.0),
        breaker_threshold: 100, // keep the breaker out of this test
        ..ResilienceConfig::default()
    };
    let mut driver = ResilientDriver::new(backend, cfg);
    driver.run(&mut rec);

    assert_eq!(driver.stats().ok_rounds, 1);
    assert_eq!(driver.stats().stale_tolerated_rounds, 1);
    assert!(driver.stats().carry_forward_rounds >= 1);
    assert_eq!(
        driver.stats().skipped_rounds,
        0,
        "always had state to act on"
    );
    assert_eq!(
        driver.backend().targets,
        vec![5, 5],
        "carry-forward kept actuating"
    );
}

#[test]
fn breaker_opens_skips_and_probes_on_schedule() {
    let mut backend = ScriptBackend::new(12, 2);
    backend.observe_plan = VecDeque::from(
        std::iter::repeat_with(|| Some(ScriptBackend::unavailable()))
            .take(500)
            .collect::<Vec<_>>(),
    );
    let mut rec = reconciler(4);
    let cfg = ResilienceConfig {
        retry: RetryPolicy::no_retry(),
        staleness_window: DurationMs::ZERO, // no cache tolerance
        breaker_threshold: 3,
        breaker_cooldown_rounds: 3,
        ..ResilienceConfig::default()
    };
    let mut sink = faro_telemetry::TraceSink::new();
    let mut driver = ResilientDriver::new(backend, cfg);
    driver.run_with(&mut rec, &mut sink);

    // Rounds 1-3 fail (one attempt each, no state to degrade onto) and
    // trip the breaker; rounds 4-5 are cooldown skips with zero backend
    // calls; round 6 is a half-open probe that fails and re-trips.
    assert!(driver.stats().breaker_opens >= 2, "{:?}", driver.stats());
    assert!(
        driver.stats().skipped_rounds >= 3 + 4,
        "{:?}",
        driver.stats()
    );
    // 12 rounds, cooldowns of 2 skipped rounds each after 3 failures +
    // repeated probes: far fewer observe calls than rounds.
    assert!(driver.backend().observe_calls < 12);
    assert_eq!(driver.backend().apply_calls, 0);
    assert_eq!(driver.backend().mutations, 0);
    let transitions: Vec<String> = sink
        .entries()
        .filter_map(|e| match &e.event {
            TelemetryEvent::BreakerTransition { from, to } => Some(format!("{from}->{to}")),
            _ => None,
        })
        .collect();
    assert_eq!(
        &transitions[..3],
        &[
            "closed->open".to_owned(),
            "open->half-open".to_owned(),
            "half-open->open".to_owned(),
        ],
        "breaker walked the closed → open → half-open → open schedule"
    );
}

#[test]
fn drift_is_detected_and_repaired() {
    let mut backend = ScriptBackend::new(6, 2);
    backend.sabotage = 1; // every apply is undone by one replica on job 0
    let mut rec = reconciler(4);
    let mut driver = ResilientDriver::new(backend, ResilienceConfig::default());
    driver.run(&mut rec);

    assert!(
        driver.stats().drift_repairs >= 4,
        "sabotaged rounds were flagged: {:?}",
        driver.stats()
    );
}

#[test]
fn chaos_plan_rejects_bad_rates() {
    let plan = ChaosPlan {
        api_errors: Some(faro_control::chaos::ApiErrors {
            observe_rate: 1.5,
            apply_rate: 0.0,
        }),
        ..ChaosPlan::none()
    };
    assert!(ChaosBackend::new(ScriptBackend::new(2, 1), plan, 1).is_err());
    assert!(ChaosPlan::none().is_none());
    assert!(ChaosPlan::none().validate().is_ok());
}

#[test]
fn chaos_injection_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let plan = ChaosPlan {
            api_errors: Some(faro_control::chaos::ApiErrors {
                observe_rate: 0.3,
                apply_rate: 0.3,
            }),
            partial_applies: Some(faro_control::chaos::PartialApplies { rate: 0.3 }),
            ..ChaosPlan::none()
        };
        let chaos = ChaosBackend::new(ScriptBackend::new(20, 3), plan, seed).unwrap();
        let mut rec = reconciler(4);
        let mut driver = ResilientDriver::new(chaos, ResilienceConfig::default());
        let stats = driver.run(&mut rec);
        let chaos = driver.into_inner();
        let chaos_stats = *chaos.stats();
        (stats, chaos_stats, chaos.into_inner().targets)
    };
    let (stats_a, chaos_a, targets_a) = run(9);
    let (stats_b, chaos_b, targets_b) = run(9);
    assert_eq!(stats_a, stats_b);
    assert_eq!(chaos_a, chaos_b);
    assert_eq!(targets_a, targets_b);
    assert!(
        chaos_a.observe_errors + chaos_a.apply_errors + chaos_a.partial_applies > 0,
        "the plan actually injected something: {chaos_a:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A round skipped with the breaker open performs zero backend
    /// calls and zero cluster mutations, for any failure script.
    #[test]
    fn breaker_open_rounds_never_touch_the_cluster(
        seed in 0u64..50,
        threshold in 1u32..4,
        cooldown in 2u32..5,
        fail_frac in 0.5f64..1.0,
    ) {
        let mut backend = ScriptBackend::new(20, 2);
        // A guaranteed failure run trips the breaker early (so the
        // property is never vacuous), then a dense pseudo-random tail.
        let mut s = seed.wrapping_mul(0x9e37_79b9).wrapping_add(1);
        backend.observe_plan = (0..threshold as usize + 1)
            .map(|_| Some(ScriptBackend::unavailable()))
            .chain((0..400).map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s as f64 / u64::MAX as f64) < fail_frac)
                    .then(ScriptBackend::unavailable)
            }))
            .collect();
        let cfg = ResilienceConfig {
            retry: RetryPolicy::no_retry(),
            staleness_window: DurationMs::ZERO,
            breaker_threshold: threshold,
            breaker_cooldown_rounds: cooldown,
            ..ResilienceConfig::default()
        };
        let mut rec = reconciler(4);
        let mut driver = ResilientDriver::new(backend, cfg);
        let mut sink = faro_telemetry::TraceSink::new();
        let mut seen_events = 0usize;
        let mut open_skips = 0u64;
        while driver.backend_mut().advance().is_some() {
            let calls_before =
                (driver.backend().observe_calls, driver.backend().apply_calls);
            let targets_before = driver.backend().targets.clone();
            driver.round_with(&mut rec, &mut sink);
            // Only the cooldown skip rounds carry the "breaker-open"
            // marker; a half-open probe round is allowed to touch the
            // backend again.
            let open_skip = sink.entries().skip(seen_events).any(|e| {
                matches!(&e.event, TelemetryEvent::DegradedRound { kind } if kind == "breaker-open")
            });
            seen_events = sink.entries().count();
            if open_skip {
                open_skips += 1;
                prop_assert_eq!(
                    (driver.backend().observe_calls, driver.backend().apply_calls),
                    calls_before,
                    "an open-breaker skip round made a backend call"
                );
                prop_assert_eq!(&driver.backend().targets, &targets_before);
            }
        }
        // With mostly-failing observes and small thresholds the breaker
        // does open, so the property is not vacuous.
        prop_assert!(open_skips > 0, "breaker never opened: {:?}", driver.stats());
    }
}
