//! The backend-agnostic control plane (paper Sec. 4.1).
//!
//! The paper deploys Faro as a Kubernetes control loop — observe the
//! cluster, solve for a desired allocation, actuate it through the
//! resource quota — layered over Ray Serve. This crate is that loop
//! with the cluster abstracted away:
//!
//! ```text
//!            +------------------------------- Reconciler ----+
//!            |                                               |
//!            |  observe()   decide()     admit()    apply()  |
//!            |  Snapshot -> Desired  -> Admitted -> Report   |
//!            |     ^          |            |          |      |
//!            +-----|----------|------------|----------|------+
//!                  |       Policy      Admission       v
//!            +----------------- ClusterBackend ---------------+
//!            |  faro-sim SimBackend | mock | kube-rs (future) |
//!            +-----------------------------------------------+
//! ```
//!
//! * [`Clock`] paces reconcile rounds: a simulated clock drains a
//!   discrete-event queue until the next policy tick, a wall clock
//!   sleeps until the next interval.
//! * [`ClusterBackend`] is the actuation surface: `observe()` returns a
//!   typed [`faro_core::ClusterSnapshot`], `apply()` actuates a
//!   [`faro_core::DesiredState`] keyed by [`faro_core::JobId`].
//! * [`Reconciler`] composes a [`faro_core::Policy`] with an
//!   [`faro_core::Admission`] strategy and runs
//!   Observe → Decide → Admit → Actuate until the clock runs out,
//!   accumulating [`RunStats`] (including the granted-vs-requested
//!   admission accounting that quota enforcement used to swallow).
//!
//! Both backend calls are fallible ([`backend::BackendError`]): a live
//! API times out, refuses calls, serves stale snapshots, and actuates
//! partially. The plain [`Reconciler`] propagates the first error;
//! [`resilient::ResilientDriver`] wraps any backend with bounded
//! deterministic retry, a circuit breaker, degraded-mode rounds, and
//! drift repair, and [`chaos::ChaosBackend`] injects exactly those
//! failures from a seeded plan so every resilience path is exercised
//! reproducibly.
//!
//! [`driver::Driver`] is the one run entry point over all of this: a
//! builder that composes a policy, admission, optional resilience,
//! and a telemetry sink over any backend and drives the loop to the
//! clock's horizon or a round bound — the simulator's run path and
//! the live HTTP loop (`faro-cluster`) are both thin layers over it,
//! and [`report::RunReport`] is its unified accounting view.
//!
//! Time is split across two traits: [`Clock`] is the run's logical
//! timeline ([`faro_core::units::SimTimeMs`]), and [`clock::WallClock`]
//! is the host's physical clock ([`faro_core::units::WallTimeMs`]) —
//! separate types with no conversion, so wall-clock millis cannot
//! leak into sim-time arithmetic.
//!
//! The discrete-event simulator (`faro-sim`) provides the first
//! backend; `examples/custom_backend.rs` in the workspace root drives
//! the same reconciler against a mock with no simulator dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod chaos;
pub mod clock;
pub mod driver;
pub mod reconciler;
pub mod report;
pub mod resilient;

pub use backend::{ActuationReport, BackendError, ClusterBackend};
pub use chaos::{
    ApiErrors, ChaosBackend, ChaosPlan, ChaosStats, InjectedLatency, PartialApplies, StaleSnapshots,
};
pub use clock::{Clock, WallClock};
pub use driver::{Driver, DriverError, DriverOutcome};
pub use reconciler::{AdmissionStats, PlannedRound, ReconcileOutcome, Reconciler, RunStats};
pub use report::RunReport;
pub use resilient::{BreakerState, DriverStats, ResilienceConfig, ResilientDriver, RetryPolicy};
