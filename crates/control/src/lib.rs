//! The backend-agnostic control plane (paper Sec. 4.1).
//!
//! The paper deploys Faro as a Kubernetes control loop — observe the
//! cluster, solve for a desired allocation, actuate it through the
//! resource quota — layered over Ray Serve. This crate is that loop
//! with the cluster abstracted away:
//!
//! ```text
//!            +------------------------------- Reconciler ----+
//!            |                                               |
//!            |  observe()   decide()     admit()    apply()  |
//!            |  Snapshot -> Desired  -> Admitted -> Report   |
//!            |     ^          |            |          |      |
//!            +-----|----------|------------|----------|------+
//!                  |       Policy      Admission       v
//!            +----------------- ClusterBackend ---------------+
//!            |  faro-sim SimBackend | mock | kube-rs (future) |
//!            +-----------------------------------------------+
//! ```
//!
//! * [`Clock`] paces reconcile rounds: a simulated clock drains a
//!   discrete-event queue until the next policy tick, a wall clock
//!   sleeps until the next interval.
//! * [`ClusterBackend`] is the actuation surface: `observe()` returns a
//!   typed [`faro_core::ClusterSnapshot`], `apply()` actuates a
//!   [`faro_core::DesiredState`] keyed by [`faro_core::JobId`].
//! * [`Reconciler`] composes a [`faro_core::Policy`] with an
//!   [`faro_core::Admission`] strategy and runs
//!   Observe → Decide → Admit → Actuate until the clock runs out,
//!   accumulating [`RunStats`] (including the granted-vs-requested
//!   admission accounting that quota enforcement used to swallow).
//!
//! Both backend calls are fallible ([`backend::BackendError`]): a live
//! API times out, refuses calls, serves stale snapshots, and actuates
//! partially. The plain [`Reconciler`] propagates the first error;
//! [`resilient::ResilientDriver`] wraps any backend with bounded
//! deterministic retry, a circuit breaker, degraded-mode rounds, and
//! drift repair, and [`chaos::ChaosBackend`] injects exactly those
//! failures from a seeded plan so every resilience path is exercised
//! reproducibly.
//!
//! The discrete-event simulator (`faro-sim`) provides the first
//! backend; `examples/custom_backend.rs` in the workspace root drives
//! the same reconciler against a mock with no simulator dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod chaos;
pub mod clock;
pub mod reconciler;
pub mod resilient;

pub use backend::{ActuationReport, BackendError, ClusterBackend};
pub use chaos::{
    ApiErrors, ChaosBackend, ChaosPlan, ChaosStats, InjectedLatency, PartialApplies, StaleSnapshots,
};
pub use clock::Clock;
pub use reconciler::{AdmissionStats, PlannedRound, ReconcileOutcome, Reconciler, RunStats};
pub use resilient::{BreakerState, DriverStats, ResilienceConfig, ResilientDriver, RetryPolicy};
