//! The unified control-loop run report.
//!
//! Three overlapping stats types grew up independently —
//! [`RunStats`] (reconciler round accounting), [`AdmissionStats`]
//! (quota accounting nested inside it), and [`DriverStats`] (the
//! resilient driver's failure accounting) — each with its own field
//! conventions, so answering "how did the run go?" meant knowing
//! which layer to ask. [`RunReport`] composes all three into one flat
//! record with consistent naming: round classifications end in
//! `*_rounds`, cumulative quantities end in `*_total`. The source
//! types remain the working state of their layers; the report is the
//! presentation view, equivalence-tested field-by-field against the
//! old accessors (see the tests in this module) so the composed view
//! can eventually replace ad-hoc drilling without a behavior change.

use crate::reconciler::RunStats;
use crate::resilient::DriverStats;
use serde::Serialize;

/// Everything one control-loop run did, in one flat record.
///
/// Built from a [`RunStats`] alone (plain reconciler runs) or from a
/// [`RunStats`] + [`DriverStats`] pair (resilient runs) via
/// [`RunReport::from_stats`] / [`RunReport::compose`]. Fields are
/// grouped by suffix: `*_rounds` classify rounds (a resilient round
/// is counted once per classification that applies), `*_total` sum
/// quantities across the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RunReport {
    /// Rounds the loop saw, including degraded and skipped ones.
    /// Equals `DriverStats::rounds` on resilient runs and
    /// `RunStats::rounds` on plain runs (which cannot skip).
    pub total_rounds: u64,
    /// Rounds that completed the full observe→apply loop cleanly.
    pub ok_rounds: u64,
    /// Rounds planned on a stale (tolerated) snapshot.
    pub stale_tolerated_rounds: u64,
    /// Degraded rounds that re-applied the last desired state.
    pub carry_forward_rounds: u64,
    /// Rounds skipped entirely (breaker open, or nothing to act on).
    pub skipped_rounds: u64,
    /// Rounds in which admission trimmed at least one request.
    pub clamped_rounds: u64,
    /// Rounds in which the quota was unsatisfiable.
    pub unsatisfiable_rounds: u64,
    /// Replicas requested by the policy across all rounds.
    pub requested_replicas_total: u64,
    /// Replicas granted by admission across all rounds.
    pub granted_replicas_total: u64,
    /// Replicas started (entered cold start) across all rounds.
    pub replicas_started_total: u64,
    /// Job decisions that failed to apply across all rounds.
    pub jobs_failed_total: u64,
    /// `observe` retry attempts beyond the first, summed.
    pub observe_retries_total: u64,
    /// `apply` retry attempts beyond the first, summed.
    pub apply_retries_total: u64,
    /// Rounds in which `observe` exhausted its attempts/budget.
    pub observe_failures_total: u64,
    /// Rounds in which `apply` exhausted its attempts/budget.
    pub apply_failures_total: u64,
    /// Times the circuit breaker opened.
    pub breaker_opens_total: u64,
    /// Fresh snapshots whose targets disagreed with the last applied
    /// desired state and were repaired by that round's apply.
    pub drift_repairs_total: u64,
}

impl RunReport {
    /// The report of a plain (non-resilient) run: every reconciler
    /// round completed cleanly, so the driver-side counters are zero
    /// and `total_rounds == ok_rounds`.
    pub fn from_stats(stats: &RunStats) -> Self {
        Self {
            total_rounds: stats.rounds,
            ok_rounds: stats.rounds,
            clamped_rounds: stats.admission.clamped_rounds,
            unsatisfiable_rounds: stats.admission.unsatisfiable_rounds,
            requested_replicas_total: stats.admission.requested_replicas,
            granted_replicas_total: stats.admission.granted_replicas,
            replicas_started_total: stats.replicas_started,
            jobs_failed_total: stats.jobs_failed,
            ..Self::default()
        }
    }

    /// The report of a resilient run: reconciler accounting from
    /// `stats`, failure/degradation accounting from `driver`.
    pub fn compose(stats: &RunStats, driver: &DriverStats) -> Self {
        Self {
            total_rounds: driver.rounds,
            ok_rounds: driver.ok_rounds,
            stale_tolerated_rounds: driver.stale_tolerated_rounds,
            carry_forward_rounds: driver.carry_forward_rounds,
            skipped_rounds: driver.skipped_rounds,
            observe_retries_total: driver.observe_retries,
            apply_retries_total: driver.apply_retries,
            observe_failures_total: driver.observe_failures,
            apply_failures_total: driver.apply_failures,
            breaker_opens_total: driver.breaker_opens,
            drift_repairs_total: driver.drift_repairs,
            ..Self::from_stats(stats)
        }
    }

    /// Replicas requested but never granted, across the whole run
    /// (mirrors `AdmissionStats::shortfall`).
    pub fn shortfall_total(&self) -> u64 {
        self.requested_replicas_total
            .saturating_sub(self.granted_replicas_total)
    }

    /// Rounds that did not complete the full loop cleanly.
    pub fn degraded_rounds(&self) -> u64 {
        self.total_rounds.saturating_sub(self.ok_rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconciler::AdmissionStats;

    fn sample_stats() -> RunStats {
        RunStats {
            rounds: 40,
            admission: AdmissionStats {
                requested_replicas: 310,
                granted_replicas: 290,
                clamped_rounds: 6,
                unsatisfiable_rounds: 1,
            },
            replicas_started: 55,
            jobs_failed: 2,
        }
    }

    fn sample_driver() -> DriverStats {
        DriverStats {
            rounds: 50,
            ok_rounds: 40,
            stale_tolerated_rounds: 3,
            carry_forward_rounds: 4,
            skipped_rounds: 3,
            observe_retries: 7,
            apply_retries: 5,
            observe_failures: 2,
            apply_failures: 1,
            breaker_opens: 1,
            drift_repairs: 2,
        }
    }

    /// Field-by-field equivalence against the legacy accessors: the
    /// unified report must be a pure renaming, never a recomputation,
    /// so the shims can be dropped without a numeric change.
    #[test]
    fn report_matches_legacy_accessors() {
        let stats = sample_stats();
        let driver = sample_driver();
        let r = RunReport::compose(&stats, &driver);

        assert_eq!(r.total_rounds, driver.rounds);
        assert_eq!(r.ok_rounds, driver.ok_rounds);
        assert_eq!(r.stale_tolerated_rounds, driver.stale_tolerated_rounds);
        assert_eq!(r.carry_forward_rounds, driver.carry_forward_rounds);
        assert_eq!(r.skipped_rounds, driver.skipped_rounds);
        assert_eq!(r.clamped_rounds, stats.admission.clamped_rounds);
        assert_eq!(r.unsatisfiable_rounds, stats.admission.unsatisfiable_rounds);
        assert_eq!(
            r.requested_replicas_total,
            stats.admission.requested_replicas
        );
        assert_eq!(r.granted_replicas_total, stats.admission.granted_replicas);
        assert_eq!(r.replicas_started_total, stats.replicas_started);
        assert_eq!(r.jobs_failed_total, stats.jobs_failed);
        assert_eq!(r.observe_retries_total, driver.observe_retries);
        assert_eq!(r.apply_retries_total, driver.apply_retries);
        assert_eq!(r.observe_failures_total, driver.observe_failures);
        assert_eq!(r.apply_failures_total, driver.apply_failures);
        assert_eq!(r.breaker_opens_total, driver.breaker_opens);
        assert_eq!(r.drift_repairs_total, driver.drift_repairs);
        assert_eq!(r.shortfall_total(), stats.admission.shortfall());
        assert_eq!(r.degraded_rounds(), 10);
    }

    /// A plain run is the degenerate composition: no driver counters,
    /// every round ok.
    #[test]
    fn plain_run_is_all_ok_rounds() {
        let stats = sample_stats();
        let r = RunReport::from_stats(&stats);
        assert_eq!(r.total_rounds, stats.rounds);
        assert_eq!(r.ok_rounds, stats.rounds);
        assert_eq!(r.degraded_rounds(), 0);
        assert_eq!(r.skipped_rounds, 0);
        assert_eq!(r.observe_retries_total, 0);
        assert_eq!(r.shortfall_total(), 20);
    }

    /// Composing with an all-zero `DriverStats` must still carry the
    /// reconciler side through unchanged.
    #[test]
    fn compose_is_from_stats_plus_driver_fields() {
        let stats = sample_stats();
        let zero = DriverStats::default();
        let composed = RunReport::compose(&stats, &zero);
        let plain = RunReport::from_stats(&stats);
        // Only the round classification differs: a zero driver saw
        // zero rounds.
        assert_eq!(
            RunReport {
                total_rounds: plain.total_rounds,
                ok_rounds: plain.ok_rounds,
                ..composed
            },
            plain
        );
    }

    /// The report serializes with its consistent field names, so
    /// downstream JSON consumers see `*_rounds` / `*_total` only.
    #[test]
    fn serialized_names_are_consistent() {
        let r = RunReport::compose(&sample_stats(), &sample_driver());
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(json.contains("\"total_rounds\":50"));
        assert!(json.contains("\"drift_repairs_total\":2"));
        assert!(!json.contains("\"admission\""), "no nested sub-reports");
    }
}
