//! The pacing abstraction that decouples the reconciler from time.

use faro_core::units::SimTimeMs;
use faro_telemetry::TelemetrySink;

/// Paces reconcile rounds.
///
/// The reconciler never sleeps or pumps events itself; it asks the
/// clock to advance to the next round. A simulated clock drains its
/// discrete-event queue until the next policy tick pops; a wall clock
/// would sleep until the next interval boundary.
pub trait Clock {
    /// Current time since the start of the run.
    fn now(&self) -> SimTimeMs;

    /// Advances to the next reconcile round, returning its time, or
    /// `None` once the run horizon is reached (the reconciler then
    /// stops).
    fn advance(&mut self) -> Option<SimTimeMs>;

    /// Like [`Clock::advance`], additionally streaming whatever
    /// happens between rounds (drops, replica lifecycle, fault
    /// windows) into `sink`. The default ignores the sink; backends
    /// with between-round activity override it. Implementations must
    /// keep the state transition identical to `advance` — telemetry
    /// observes a run, it never steers one.
    fn advance_with(&mut self, sink: &mut dyn TelemetrySink) -> Option<SimTimeMs> {
        let _ = sink;
        self.advance()
    }
}
