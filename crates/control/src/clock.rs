//! The pacing abstraction that decouples the reconciler from time.

use faro_core::units::{SimTimeMs, WallTimeMs};
use faro_telemetry::TelemetrySink;

/// Paces reconcile rounds.
///
/// The reconciler never sleeps or pumps events itself; it asks the
/// clock to advance to the next round. A simulated clock drains its
/// discrete-event queue until the next policy tick pops; a wall-clock
/// backend sleeps until the next interval boundary.
///
/// [`Clock::now`] is the run's *logical* timeline — round-aligned
/// [`SimTimeMs`] instants that stamp snapshots and telemetry
/// identically whether the backend is simulated or live. The host's
/// physical clock is deliberately not on this trait: backends that
/// have one implement [`WallClock`] separately, so a wall-clock read
/// can never be mistaken for a logical instant.
pub trait Clock {
    /// Current time on the run's logical timeline.
    fn now(&self) -> SimTimeMs;

    /// Advances to the next reconcile round, returning its time, or
    /// `None` once the run horizon is reached (the reconciler then
    /// stops).
    fn advance(&mut self) -> Option<SimTimeMs>;

    /// Like [`Clock::advance`], additionally streaming whatever
    /// happens between rounds (drops, replica lifecycle, fault
    /// windows) into `sink`. The default ignores the sink; backends
    /// with between-round activity override it. Implementations must
    /// keep the state transition identical to `advance` — telemetry
    /// observes a run, it never steers one.
    fn advance_with(&mut self, sink: &mut dyn TelemetrySink) -> Option<SimTimeMs> {
        let _ = sink;
        self.advance()
    }
}

/// Access to the host's physical clock, split off from [`Clock`].
///
/// `Clock::now` used to be the only time accessor, which conflated
/// two timelines: the deterministic round-aligned one policies reason
/// about, and the host's wall clock a live deployment pacing sleeps
/// and latency gates against. Backends with a real clock implement
/// this trait *in addition to* [`Clock`]; purely simulated backends
/// do not implement it at all, so simulated code cannot even ask for
/// wall time. The return type is [`WallTimeMs`], which has no
/// conversion to [`SimTimeMs`] — the compiler stops a wall-clock
/// milli from ever entering sim-time arithmetic.
pub trait WallClock {
    /// The host's physical clock, as milliseconds since the Unix
    /// epoch. Monotonicity is *not* guaranteed (the host clock can
    /// step); use it for tagging and gating, never for ordering
    /// rounds.
    fn wall_now(&self) -> WallTimeMs;
}
