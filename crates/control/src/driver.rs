//! The backend-generic run builder: one entry point for simulated
//! and live control loops.
//!
//! The simulator grew a convenient `Simulation::runner()…run()`
//! builder, but it was sim-only — driving any other
//! [`ClusterBackend`] (a chaos-wrapped sim, the in-process HTTP
//! cluster, eventually a real apiserver) meant hand-composing a
//! [`Reconciler`], an optional [`ResilientDriver`], and the run loop.
//! [`Driver`] promotes that builder to the control plane: it works on
//! any backend, optionally wraps it in resilience, streams into any
//! telemetry sink, and can bound the run by rounds (a live loop has
//! no horizon of its own). `Simulation::driver()` in `faro-sim` and
//! the live loop in `faro-cluster` are both thin layers over this
//! type.

use crate::backend::ClusterBackend;
use crate::reconciler::{Reconciler, RunStats};
use crate::report::RunReport;
use crate::resilient::{BreakerState, DriverStats, ResilienceConfig, ResilientDriver};
use crate::BackendError;
use core::fmt;
use faro_core::admission::{Admission, ClampToQuota};
use faro_core::policy::Policy;
use faro_telemetry::{NoopSink, TelemetrySink};

/// Why a [`Driver`] run could not produce an outcome.
#[derive(Debug)]
pub enum DriverError {
    /// No policy was attached; call [`Driver::policy`] first.
    NoPolicy,
    /// A plain (non-resilient) run hit a backend error and stopped.
    /// Resilient runs absorb backend errors into their
    /// [`RunReport`] instead.
    Backend(BackendError),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::NoPolicy => {
                write!(f, "no policy attached; call Driver::policy first")
            }
            DriverError::Backend(e) => write!(f, "backend error: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<BackendError> for DriverError {
    fn from(e: BackendError) -> Self {
        DriverError::Backend(e)
    }
}

/// Builder for one control-loop run over any [`ClusterBackend`].
///
/// Obtained from [`Driver::new`]; consumed by [`Driver::run`] or
/// [`Driver::run_rounds`]. The sink type parameter defaults to
/// [`NoopSink`], which compiles the instrumentation out entirely —
/// attach a real sink with [`Driver::telemetry`] (pass `&mut sink` to
/// keep it; sinks are implemented for mutable references too).
pub struct Driver<B: ClusterBackend, S: TelemetrySink = NoopSink> {
    backend: B,
    policy: Option<Box<dyn Policy>>,
    admission: Option<Box<dyn Admission>>,
    resilience: Option<ResilienceConfig>,
    max_rounds: Option<u64>,
    sink: S,
}

impl<B: ClusterBackend> Driver<B> {
    /// Starts configuring a run over `backend`.
    pub fn new(backend: B) -> Self {
        Self {
            backend,
            policy: None,
            admission: None,
            resilience: None,
            max_rounds: None,
            sink: NoopSink,
        }
    }
}

impl<B: ClusterBackend, S: TelemetrySink> Driver<B, S> {
    /// The policy under test (required).
    pub fn policy(mut self, policy: Box<dyn Policy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Overrides the admission controller (default: [`ClampToQuota`],
    /// which trims requests to the snapshot's replica quota).
    pub fn admission(mut self, admission: Box<dyn Admission>) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Wraps the backend in a [`ResilientDriver`] with this tuning:
    /// backend errors are retried/degraded per the config instead of
    /// aborting the run, and the outcome carries [`DriverStats`].
    pub fn resilience(mut self, cfg: ResilienceConfig) -> Self {
        self.resilience = Some(cfg);
        self
    }

    /// Bounds the run to at most `n` reconcile rounds. Without a
    /// bound the run continues until the backend's clock is exhausted
    /// — which a wall-clock backend may never be.
    pub fn max_rounds(mut self, n: u64) -> Self {
        self.max_rounds = Some(n);
        self
    }

    /// Attaches a telemetry sink, replacing the current one. The run
    /// streams phase spans, decision records, and backend events into
    /// it.
    pub fn telemetry<T: TelemetrySink>(self, sink: T) -> Driver<B, T> {
        Driver {
            backend: self.backend,
            policy: self.policy,
            admission: self.admission,
            resilience: self.resilience,
            max_rounds: self.max_rounds,
            sink,
        }
    }

    /// Runs the control loop until the backend's clock is exhausted
    /// (or the round bound set by [`Driver::max_rounds`] is reached).
    ///
    /// # Errors
    ///
    /// [`DriverError::NoPolicy`] when no policy was attached;
    /// [`DriverError::Backend`] when a plain run hits a backend error
    /// (resilient runs absorb backend errors and keep going).
    pub fn run(self) -> Result<DriverOutcome<B>, DriverError> {
        let Driver {
            backend,
            policy,
            admission,
            resilience,
            max_rounds,
            mut sink,
        } = self;
        let policy = policy.ok_or(DriverError::NoPolicy)?;
        let admission = admission.unwrap_or_else(|| Box::new(ClampToQuota) as Box<dyn Admission>);
        let mut reconciler = Reconciler::new(policy, admission);
        let budget = max_rounds.unwrap_or(u64::MAX);
        match resilience {
            None => {
                let mut backend = backend;
                let mut rounds = 0u64;
                while rounds < budget && backend.advance_with(&mut sink).is_some() {
                    reconciler.reconcile_with(&mut backend, &mut sink)?;
                    rounds += 1;
                }
                let stats = *reconciler.stats();
                Ok(DriverOutcome {
                    policy_name: reconciler.policy_name().to_string(),
                    report: RunReport::from_stats(&stats),
                    stats,
                    driver_stats: None,
                    breaker: None,
                    backend,
                })
            }
            Some(cfg) => {
                let mut driver = ResilientDriver::new(backend, cfg);
                let mut rounds = 0u64;
                while rounds < budget && driver.backend_mut().advance_with(&mut sink).is_some() {
                    driver.round_with(&mut reconciler, &mut sink);
                    rounds += 1;
                }
                let stats = *reconciler.stats();
                let driver_stats = *driver.stats();
                Ok(DriverOutcome {
                    policy_name: reconciler.policy_name().to_string(),
                    report: RunReport::compose(&stats, &driver_stats),
                    stats,
                    driver_stats: Some(driver_stats),
                    breaker: Some(driver.breaker_state()),
                    backend: driver.into_inner(),
                })
            }
        }
    }

    /// [`Driver::max_rounds`] + [`Driver::run`] in one call — the
    /// natural shape for live loops, which tick until told to stop.
    ///
    /// # Errors
    ///
    /// Same contract as [`Driver::run`].
    pub fn run_rounds(self, n: u64) -> Result<DriverOutcome<B>, DriverError> {
        self.max_rounds(n).run()
    }
}

/// Everything one [`Driver`] run produced.
///
/// The backend is handed back for backend-specific harvesting (e.g.
/// `SimBackend::finish` builds the cluster report); the stats come in
/// both the unified [`RunReport`] form and the layer-level
/// [`RunStats`] / [`DriverStats`] forms until the latter shims are
/// dropped.
#[derive(Debug)]
pub struct DriverOutcome<B> {
    /// The backend, handed back after the run.
    pub backend: B,
    /// The composed policy's display name.
    pub policy_name: String,
    /// The unified run report.
    pub report: RunReport,
    /// The reconciler's own accounting (legacy view; every field is
    /// mirrored in [`DriverOutcome::report`]).
    pub stats: RunStats,
    /// The resilient driver's accounting when [`Driver::resilience`]
    /// was configured (legacy view; mirrored in the report).
    pub driver_stats: Option<DriverStats>,
    /// Final circuit-breaker state of a resilient run.
    pub breaker: Option<BreakerState>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ActuationReport;
    use crate::clock::Clock;
    use crate::ResilienceConfig;
    use faro_core::admission::Unlimited;
    use faro_core::baselines::Aiad;
    use faro_core::types::{ClusterSnapshot, JobObservation, JobSpec, ResourceModel};
    use faro_core::units::{DurationMs, RatePerMin, ReplicaCount, SimTimeMs};
    use faro_telemetry::TraceSink;
    use std::sync::Arc;

    /// A minimal in-memory backend: fixed horizon, instant actuation,
    /// fixed arrival rate.
    struct MemBackend {
        now: SimTimeMs,
        rounds_left: u32,
        target: u32,
        applies: u32,
    }

    impl MemBackend {
        fn new(rounds: u32) -> Self {
            Self {
                now: SimTimeMs::ZERO,
                rounds_left: rounds,
                target: 1,
                applies: 0,
            }
        }
    }

    impl Clock for MemBackend {
        fn now(&self) -> SimTimeMs {
            self.now
        }

        fn advance(&mut self) -> Option<SimTimeMs> {
            if self.rounds_left == 0 {
                return None;
            }
            self.rounds_left -= 1;
            self.now += DurationMs::from_secs(10.0);
            Some(self.now)
        }
    }

    impl ClusterBackend for MemBackend {
        fn observe(&mut self) -> Result<ClusterSnapshot, BackendError> {
            let spec = Arc::new(JobSpec::resnet34("m"));
            let processing = spec.processing_time;
            Ok(ClusterSnapshot {
                now: self.now,
                resources: ResourceModel::replicas(ReplicaCount::new(8)),
                jobs: vec![JobObservation {
                    spec,
                    target_replicas: self.target,
                    ready_replicas: self.target,
                    queue_len: 4,
                    arrival_rate_history: Arc::new(vec![RatePerMin::new(600.0)]),
                    recent_arrival_rate: 10.0,
                    mean_processing_time: processing,
                    recent_tail_latency: 0.9,
                    drop_rate: 0.0,
                    class_target: None,
                    class_ready: None,
                }],
            })
        }

        fn apply(
            &mut self,
            desired: &faro_core::types::DesiredState,
        ) -> Result<ActuationReport, BackendError> {
            let mut report = ActuationReport::default();
            for (_, d) in desired.iter() {
                report.replicas_started += d.target_replicas.saturating_sub(self.target);
                self.target = d.target_replicas;
                report.jobs_applied += 1;
            }
            self.applies += 1;
            Ok(report)
        }
    }

    #[test]
    fn run_requires_a_policy() {
        let err = Driver::new(MemBackend::new(3)).run().err();
        assert!(matches!(err, Some(DriverError::NoPolicy)));
        assert!(format!("{}", DriverError::NoPolicy).contains("policy"));
    }

    #[test]
    fn plain_run_drives_to_the_horizon() {
        let out = Driver::new(MemBackend::new(5))
            .policy(Box::new(Aiad::default()))
            .admission(Box::new(Unlimited))
            .run()
            .expect("mem backend never fails");
        assert_eq!(out.stats.rounds, 5);
        assert_eq!(out.report.total_rounds, 5);
        assert_eq!(out.report.ok_rounds, 5);
        assert_eq!(out.backend.applies, 5);
        assert_eq!(out.policy_name, "AIAD");
        assert!(out.driver_stats.is_none());
        assert!(out.breaker.is_none());
    }

    #[test]
    fn run_rounds_bounds_an_unbounded_clock() {
        // 100-round horizon, bounded to 4: the driver must stop at
        // the bound, not the horizon.
        let out = Driver::new(MemBackend::new(100))
            .policy(Box::new(Aiad::default()))
            .run_rounds(4)
            .expect("mem backend never fails");
        assert_eq!(out.stats.rounds, 4);
        assert_eq!(out.backend.rounds_left, 96);
    }

    #[test]
    fn resilient_run_reports_composed_stats() {
        let mut sink = TraceSink::new();
        let out = Driver::new(MemBackend::new(6))
            .policy(Box::new(Aiad::default()))
            .resilience(ResilienceConfig::default())
            .telemetry(&mut sink)
            .run()
            .expect("mem backend never fails");
        let driver_stats = out
            .driver_stats
            .expect("resilient run records driver stats");
        assert_eq!(driver_stats.rounds, 6);
        assert_eq!(driver_stats.ok_rounds, 6);
        assert_eq!(out.report, RunReport::compose(&out.stats, &driver_stats));
        assert_eq!(out.breaker, Some(BreakerState::Closed));
        assert!(!sink.is_empty(), "telemetry streamed through the driver");
    }
}
