//! The actuation surface a control plane drives.

use crate::clock::Clock;
use faro_core::types::{ClusterSnapshot, DesiredState};
use faro_core::units::ReplicaCount;
use faro_telemetry::TelemetrySink;

pub use faro_core::error::BackendError;

/// What one actuation round did to the cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActuationReport {
    /// Jobs whose decision was applied (absent jobs are untouched).
    pub jobs_applied: u32,
    /// Jobs whose decision could not be applied (unknown job, or —
    /// under a resilient driver — jobs still unactuated when the
    /// retry budget ran out). `jobs_applied + jobs_failed` accounts
    /// for every job in the desired state.
    pub jobs_failed: u32,
    /// New replicas that started cold-starting this round.
    pub replicas_started: ReplicaCount,
}

/// A cluster that can be observed and actuated — the boundary between
/// the control plane and the world.
///
/// The discrete-event simulator implements this (`SimBackend` in
/// `faro-sim`); a kube-rs backend would implement the same surface
/// against a real cluster, leaving the reconciler and every policy
/// unchanged. The [`Clock`] supertrait paces the loop: `advance()`
/// brings the backend to the next reconcile round.
///
/// Both calls are fallible: a live backend can time out, be
/// unreachable, actuate only part of a desired state, or serve a
/// snapshot too old to act on — the [`BackendError`] taxonomy covers
/// exactly these. In-process backends (the simulator, test mocks)
/// simply never return `Err`. The plain [`Reconciler`] propagates the
/// first error and stops; wrap the backend in a
/// [`ResilientDriver`] for bounded retry, circuit breaking, and
/// degraded-mode rounds.
///
/// [`Reconciler`]: crate::Reconciler
/// [`ResilientDriver`]: crate::ResilientDriver
pub trait ClusterBackend: Clock {
    /// A consistent snapshot of the cluster at the current time.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the snapshot could not be produced
    /// (timeout, API unavailable) or is unusably old
    /// ([`BackendError::StaleSnapshot`]).
    fn observe(&mut self) -> Result<ClusterSnapshot, BackendError>;

    /// Actuates the desired state: scales each listed job toward its
    /// target and sets its drop rate. Jobs absent from `desired` are
    /// left untouched. Applying the same state twice is a no-op on
    /// cluster state — which is what makes retrying a
    /// [`BackendError::PartialApply`] safe: re-applying the full
    /// desired state converges to the same cluster state as one
    /// successful apply.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when actuation failed outright (timeout,
    /// unavailable) or only a prefix of the desired state landed
    /// ([`BackendError::PartialApply`]).
    fn apply(&mut self, desired: &DesiredState) -> Result<ActuationReport, BackendError>;

    /// Like [`ClusterBackend::apply`], additionally streaming
    /// actuation detail (cold starts begun, their delays) into `sink`.
    /// The default ignores the sink; implementations overriding this
    /// must keep the cluster-state transition identical to `apply`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ClusterBackend::apply`].
    fn apply_with(
        &mut self,
        desired: &DesiredState,
        sink: &mut dyn TelemetrySink,
    ) -> Result<ActuationReport, BackendError> {
        let _ = sink;
        self.apply(desired)
    }
}
