//! The actuation surface a control plane drives.

use crate::clock::Clock;
use faro_core::types::{ClusterSnapshot, DesiredState};
use faro_core::units::ReplicaCount;
use faro_telemetry::TelemetrySink;

/// What one actuation round did to the cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActuationReport {
    /// Jobs whose decision was applied (absent jobs are untouched).
    pub jobs_applied: u32,
    /// New replicas that started cold-starting this round.
    pub replicas_started: ReplicaCount,
}

/// A cluster that can be observed and actuated — the boundary between
/// the control plane and the world.
///
/// The discrete-event simulator implements this (`SimBackend` in
/// `faro-sim`); a kube-rs backend would implement the same surface
/// against a real cluster, leaving the reconciler and every policy
/// unchanged. The [`Clock`] supertrait paces the loop: `advance()`
/// brings the backend to the next reconcile round.
pub trait ClusterBackend: Clock {
    /// A consistent snapshot of the cluster at the current time.
    fn observe(&mut self) -> ClusterSnapshot;

    /// Actuates the desired state: scales each listed job toward its
    /// target and sets its drop rate. Jobs absent from `desired` are
    /// left untouched. Applying the same state twice is a no-op on
    /// cluster state.
    fn apply(&mut self, desired: &DesiredState) -> ActuationReport;

    /// Like [`ClusterBackend::apply`], additionally streaming
    /// actuation detail (cold starts begun, their delays) into `sink`.
    /// The default ignores the sink; implementations overriding this
    /// must keep the cluster-state transition identical to `apply`.
    fn apply_with(
        &mut self,
        desired: &DesiredState,
        sink: &mut dyn TelemetrySink,
    ) -> ActuationReport {
        let _ = sink;
        self.apply(desired)
    }
}
