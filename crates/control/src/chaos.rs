//! Deterministic API-level fault injection: a composable
//! [`ChaosBackend`] wrapper that makes any [`ClusterBackend`] fail the
//! way a live control-plane API does.
//!
//! PR 1's in-sim fault plan perturbs the *world* (crashes, outages,
//! cold-start spikes); this module perturbs the *API boundary*:
//! injected call errors, added observe/apply latency that can cross a
//! timeout threshold, stale snapshots replayed from a cache, and
//! partial applies that actuate only a prefix of the desired state.
//! The plan follows the [`FaultPlan`] style — one optional class per
//! fault type, `none()` injects nothing, `validate()` rejects
//! malformed plans — and each class draws from its own seeded
//! splitmix64 stream (`seed ^` a per-class constant), so enabling one
//! class never shifts another's draws and two runs with the same plan
//! replay byte-identically.
//!
//! The wrapper never touches the clock or the workload: `Clock` calls
//! delegate untouched, so a chaos run and a clean run see the same
//! world and differ only at the API surface.
//!
//! [`FaultPlan`]: ../faro_sim/faults/struct.FaultPlan.html

use crate::backend::{ActuationReport, BackendError, ClusterBackend};
use crate::clock::Clock;
use faro_core::types::{ClusterSnapshot, DesiredState};
use faro_core::units::{DurationMs, SimTimeMs};
use faro_core::FaroError;
use faro_telemetry::TelemetrySink;

/// Probability per call that the API refuses outright
/// ([`BackendError::Unavailable`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApiErrors {
    /// Failure probability per `observe` call, in `[0, 1]`.
    pub observe_rate: f64,
    /// Failure probability per `apply` call, in `[0, 1]`.
    pub apply_rate: f64,
}

/// Synthetic call latency, exponentially distributed; a draw past the
/// deadline fails the call with [`BackendError::Timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedLatency {
    /// Mean of the exponential latency distribution.
    pub mean: DurationMs,
    /// Calls whose drawn latency exceeds this fail with `Timeout`.
    pub timeout_after: DurationMs,
}

/// Probability per `observe` that the call serves the previously
/// cached snapshot instead of a fresh one (its `now` lags the clock;
/// whether that is tolerable is the caller's staleness policy). Before
/// anything is cached the call falls through to the real backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaleSnapshots {
    /// Replay probability per call, in `[0, 1]`.
    pub rate: f64,
}

/// Probability per `apply` that only a prefix of the desired state is
/// actuated before the call fails with [`BackendError::PartialApply`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialApplies {
    /// Partial-apply probability per call, in `[0, 1]`.
    pub rate: f64,
}

/// A deterministic API-chaos schedule: every class optional, every
/// class drawing from its own seeded stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosPlan {
    /// Injected `Unavailable` errors.
    pub api_errors: Option<ApiErrors>,
    /// Injected call latency with a timeout threshold.
    pub latency: Option<InjectedLatency>,
    /// Stale-snapshot replays on `observe`.
    pub stale_snapshots: Option<StaleSnapshots>,
    /// Partial applies on `apply`.
    pub partial_applies: Option<PartialApplies>,
}

impl ChaosPlan {
    /// The empty plan: injects nothing; a [`ChaosBackend`] carrying it
    /// is a transparent pass-through.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.api_errors.is_none()
            && self.latency.is_none()
            && self.stale_snapshots.is_none()
            && self.partial_applies.is_none()
    }

    /// Validates rates and durations.
    ///
    /// # Errors
    ///
    /// [`FaroError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), FaroError> {
        let unit = |name: &str, v: f64| -> Result<(), FaroError> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(FaroError::InvalidConfig(format!(
                    "chaos plan: {name} must be in [0, 1], got {v}"
                )))
            }
        };
        if let Some(e) = &self.api_errors {
            unit("api_errors.observe_rate", e.observe_rate)?;
            unit("api_errors.apply_rate", e.apply_rate)?;
        }
        if let Some(l) = &self.latency {
            if l.mean <= DurationMs::ZERO || l.timeout_after <= DurationMs::ZERO {
                return Err(FaroError::InvalidConfig(
                    "chaos plan: latency mean and timeout_after must be positive".into(),
                ));
            }
        }
        if let Some(s) = &self.stale_snapshots {
            unit("stale_snapshots.rate", s.rate)?;
        }
        if let Some(p) = &self.partial_applies {
            unit("partial_applies.rate", p.rate)?;
        }
        Ok(())
    }
}

/// What the wrapper injected across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// `observe` calls failed with `Unavailable`.
    pub observe_errors: u64,
    /// `apply` calls failed with `Unavailable`.
    pub apply_errors: u64,
    /// Calls failed with `Timeout` (latency past the deadline).
    pub timeouts: u64,
    /// `observe` calls served from the stale cache.
    pub stale_serves: u64,
    /// `apply` calls that actuated only a prefix.
    pub partial_applies: u64,
    /// Total injected latency, timeouts included.
    pub injected_latency: DurationMs,
}

/// One per-fault-type stream of the workspace splitmix64 generator
/// ([`faro_core::rng::SplitMix64`]): cheap, seedable, free of external
/// dependencies, and bit-identical to the private stream this module
/// carried before the generator moved to `faro-core`.
type FaultStream = faro_core::rng::SplitMix64;

/// Wraps a [`ClusterBackend`] and injects API faults per a seeded
/// [`ChaosPlan`]. Composes with the resilient driver:
/// `ResilientDriver::new(ChaosBackend::new(backend, plan, seed), cfg)`
/// is the deterministic testbed for every retry/breaker/degraded path.
pub struct ChaosBackend<B: ClusterBackend> {
    inner: B,
    plan: ChaosPlan,
    err_stream: FaultStream,
    latency_stream: FaultStream,
    stale_stream: FaultStream,
    partial_stream: FaultStream,
    cached: Option<ClusterSnapshot>,
    stats: ChaosStats,
}

impl<B: ClusterBackend> ChaosBackend<B> {
    /// Wraps `inner`, drawing each fault class from its own stream
    /// derived from `seed`.
    ///
    /// # Errors
    ///
    /// [`FaroError::InvalidConfig`] when the plan is malformed.
    pub fn new(inner: B, plan: ChaosPlan, seed: u64) -> Result<Self, FaroError> {
        plan.validate()?;
        Ok(Self {
            inner,
            plan,
            err_stream: FaultStream::new(seed ^ 0xc4a0_5e11),
            latency_stream: FaultStream::new(seed ^ 0x1a7e_9c55),
            stale_stream: FaultStream::new(seed ^ 0x57a1_e000),
            partial_stream: FaultStream::new(seed ^ 0x9a47_11aa),
            cached: None,
            stats: ChaosStats::default(),
        })
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps the chaos layer, returning the backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// What was injected so far.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Draws this call's injected latency; `Err(Timeout)` when it
    /// crosses the plan's deadline. One draw per call when the class
    /// is enabled, zero when it is not.
    fn draw_latency(&mut self) -> Result<(), BackendError> {
        let Some(lat) = self.plan.latency else {
            return Ok(());
        };
        let u = self.latency_stream.fraction();
        // Exponential with the configured mean; 1 - u keeps ln() off
        // zero. Millisecond math stays in DurationMs.
        let drawn_ms = (-(1.0 - u).ln() * lat.mean.as_millis() as f64).round() as i64;
        let drawn = DurationMs::from_millis(drawn_ms);
        self.stats.injected_latency = self.stats.injected_latency + drawn;
        if drawn > lat.timeout_after {
            self.stats.timeouts += 1;
            return Err(BackendError::Timeout { elapsed: drawn });
        }
        Ok(())
    }
}

impl<B: ClusterBackend> Clock for ChaosBackend<B> {
    fn now(&self) -> SimTimeMs {
        self.inner.now()
    }

    fn advance(&mut self) -> Option<SimTimeMs> {
        self.inner.advance()
    }

    fn advance_with(&mut self, sink: &mut dyn TelemetrySink) -> Option<SimTimeMs> {
        self.inner.advance_with(sink)
    }
}

impl<B: ClusterBackend> ClusterBackend for ChaosBackend<B> {
    fn observe(&mut self) -> Result<ClusterSnapshot, BackendError> {
        self.draw_latency()?;
        if let Some(e) = self.plan.api_errors {
            if e.observe_rate > 0.0 && self.err_stream.fraction() < e.observe_rate {
                self.stats.observe_errors += 1;
                return Err(BackendError::Unavailable {
                    reason: "injected observe outage".into(),
                });
            }
        }
        if let Some(s) = self.plan.stale_snapshots {
            if s.rate > 0.0 && self.stale_stream.fraction() < s.rate {
                // Replay the cache when there is one; the first calls
                // of a run have nothing to be stale about.
                if let Some(cached) = &self.cached {
                    self.stats.stale_serves += 1;
                    return Ok(cached.clone());
                }
            }
        }
        let snapshot = self.inner.observe()?;
        self.cached = Some(snapshot.clone());
        Ok(snapshot)
    }

    fn apply(&mut self, desired: &DesiredState) -> Result<ActuationReport, BackendError> {
        self.apply_with(desired, &mut faro_telemetry::NoopSink)
    }

    fn apply_with(
        &mut self,
        desired: &DesiredState,
        sink: &mut dyn TelemetrySink,
    ) -> Result<ActuationReport, BackendError> {
        self.draw_latency()?;
        if let Some(e) = self.plan.api_errors {
            if e.apply_rate > 0.0 && self.err_stream.fraction() < e.apply_rate {
                self.stats.apply_errors += 1;
                return Err(BackendError::Unavailable {
                    reason: "injected apply outage".into(),
                });
            }
        }
        if let Some(p) = self.plan.partial_applies {
            if p.rate > 0.0 && desired.len() > 1 && self.partial_stream.fraction() < p.rate {
                // Actuate a strict prefix (ascending JobId, matching a
                // full apply's ordering) of 1..len-1 jobs, then fail.
                let k = 1 + (self.partial_stream.next_u64() % (desired.len() as u64 - 1)) as usize;
                let prefix: DesiredState = desired.iter().take(k).collect();
                let report = self.inner.apply_with(&prefix, sink)?;
                self.stats.partial_applies += 1;
                return Err(BackendError::PartialApply {
                    applied: report.jobs_applied,
                });
            }
        }
        self.inner.apply_with(desired, sink)
    }
}
