//! A resilient driver for fallible backends: bounded retry with
//! deterministic backoff, a circuit breaker, degraded-mode rounds, and
//! desired-vs-observed drift detection.
//!
//! The plain [`Reconciler`] stops at the first [`BackendError`]; that
//! is correct for the in-process simulator (which never fails) but not
//! for the live backends ROADMAP item 2 targets, where the API *will*
//! time out, refuse calls, and serve stale snapshots. The
//! [`ResilientDriver`] wraps any [`ClusterBackend`] and keeps the loop
//! alive through those failures without ever touching a wall clock:
//!
//! * **Bounded retry with backoff.** Each `observe`/`apply` is retried
//!   up to [`RetryPolicy::max_attempts`] times. Backoff delays double
//!   from [`RetryPolicy::base_backoff`] up to
//!   [`RetryPolicy::max_backoff`], jittered into `[d/2, d)` by a
//!   seeded splitmix64 stream, and are *virtual*: expressed in
//!   [`DurationMs`], charged against a per-phase budget, never slept.
//!   Two runs with the same seed retry identically.
//! * **Circuit breaker.** After [`ResilienceConfig::breaker_threshold`]
//!   consecutive failed rounds the breaker opens: whole rounds are
//!   skipped (no backend call at all — an open round provably cannot
//!   mutate cluster state) for
//!   [`ResilienceConfig::breaker_cooldown_rounds`] rounds, then a
//!   half-open probe round tests the water.
//! * **Degraded-mode ladder.** When `observe` gives up, the driver
//!   extends PR 1's solve carry-forward to the API layer: it first
//!   re-plans on the last good snapshot if that is younger than
//!   [`ResilienceConfig::staleness_window`]; failing that it
//!   re-applies the last desired state verbatim (carry-forward);
//!   failing that it skips the round and reports it.
//! * **Drift detection.** A fresh snapshot whose per-job targets
//!   disagree with the last applied desired state (external
//!   interference, an earlier partial apply) is flagged; the round's
//!   apply is the repair and is counted as one.
//!
//! Every retry attempt, breaker transition, degraded round, and drift
//! repair is emitted as a [`TelemetryEvent`], so chaos runs are as
//! auditable as clean ones.

use crate::backend::{ActuationReport, BackendError, ClusterBackend};
use crate::reconciler::{Reconciler, RunStats};
use faro_core::types::{ClusterSnapshot, DesiredState};
use faro_core::units::{DurationMs, SimTimeMs};
use faro_telemetry::{NoopSink, TelemetryEvent, TelemetrySink};

/// Bounded-retry parameters for one backend call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: DurationMs,
    /// Ceiling on a single backoff delay.
    pub max_backoff: DurationMs,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: DurationMs::from_millis(100),
            max_backoff: DurationMs::from_secs(2.0),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (first failure is final).
    pub fn no_retry() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }
}

/// Tuning for the [`ResilientDriver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Retry policy shared by `observe` and `apply`.
    pub retry: RetryPolicy,
    /// Cumulative virtual backoff budget per round for `observe`;
    /// retries stop once the next delay would exceed it.
    pub observe_budget: DurationMs,
    /// Cumulative virtual backoff budget per round for `apply`.
    pub apply_budget: DurationMs,
    /// How old a snapshot (cached or served) may be and still be
    /// planned on; beyond this the round degrades to carry-forward.
    pub staleness_window: DurationMs,
    /// Consecutive failed rounds before the breaker opens.
    pub breaker_threshold: u32,
    /// Open rounds (fully skipped) before a half-open probe.
    pub breaker_cooldown_rounds: u32,
    /// Seed for the backoff jitter stream. Runs with equal seeds and
    /// equal failure patterns produce byte-identical retry schedules.
    pub jitter_seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            retry: RetryPolicy::default(),
            observe_budget: DurationMs::from_secs(5.0),
            apply_budget: DurationMs::from_secs(5.0),
            staleness_window: DurationMs::from_secs(60.0),
            breaker_threshold: 3,
            breaker_cooldown_rounds: 5,
            jitter_seed: 0,
        }
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation.
    Closed,
    /// Tripped: rounds are skipped without touching the backend.
    Open,
    /// Cooldown elapsed: the next round is a single-attempt probe.
    HalfOpen,
}

impl BreakerState {
    fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What the driver did across a run, beyond the reconciler's
/// [`RunStats`] (which only counts fully completed rounds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Rounds the driver saw (ticks), including skipped ones.
    pub rounds: u64,
    /// Rounds that completed the full observe→apply loop cleanly.
    pub ok_rounds: u64,
    /// Rounds planned on a stale (tolerated) snapshot.
    pub stale_tolerated_rounds: u64,
    /// Degraded rounds that re-applied the last desired state.
    pub carry_forward_rounds: u64,
    /// Rounds skipped entirely (breaker open, or nothing to act on).
    pub skipped_rounds: u64,
    /// `observe` retry attempts beyond the first, summed.
    pub observe_retries: u64,
    /// `apply` retry attempts beyond the first, summed.
    pub apply_retries: u64,
    /// Rounds in which `observe` exhausted its attempts/budget.
    pub observe_failures: u64,
    /// Rounds in which `apply` exhausted its attempts/budget.
    pub apply_failures: u64,
    /// Times the breaker transitioned Closed/HalfOpen → Open.
    pub breaker_opens: u64,
    /// Fresh snapshots whose targets disagreed with the last applied
    /// desired state; the round's apply repaired them.
    pub drift_repairs: u64,
}

/// Deterministic jitter: the workspace splitmix64 stream
/// ([`faro_core::rng::SplitMix64`]), advanced once per backoff draw.
/// No external RNG dependency, no global state — the stream is part of
/// the driver and therefore of the run's seed, and its draws are
/// bit-identical to the private stream this module carried before the
/// generator moved to `faro-core`.
type JitterStream = faro_core::rng::SplitMix64;

/// Outcome of one retried call: the value, plus how many retries and
/// how much virtual delay it took.
struct Retried<T> {
    value: Result<T, BackendError>,
    retries: u64,
}

/// Wraps a fallible [`ClusterBackend`] and drives the
/// Observe → Decide → Admit → Actuate loop through failures.
///
/// The driver owns the backend; [`ResilientDriver::into_inner`] hands
/// it back (e.g. for `SimBackend::finish`). The reconciler stays
/// outside and is borrowed per call, mirroring [`Reconciler::run`].
pub struct ResilientDriver<B: ClusterBackend> {
    backend: B,
    cfg: ResilienceConfig,
    jitter: JitterStream,
    breaker: BreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
    last_snapshot: Option<ClusterSnapshot>,
    last_desired: Option<DesiredState>,
    stats: DriverStats,
}

impl<B: ClusterBackend> ResilientDriver<B> {
    /// Wraps `backend` with the given resilience tuning.
    pub fn new(backend: B, cfg: ResilienceConfig) -> Self {
        Self {
            backend,
            cfg,
            jitter: JitterStream::new(cfg.jitter_seed ^ 0xd81f_7e77),
            breaker: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            last_snapshot: None,
            last_desired: None,
            stats: DriverStats::default(),
        }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The wrapped backend, mutably.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Unwraps the driver, returning the backend.
    pub fn into_inner(self) -> B {
        self.backend
    }

    /// Driver-level accounting for the run so far.
    pub fn stats(&self) -> &DriverStats {
        &self.stats
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker
    }

    /// Runs the loop until the backend's clock runs out. Unlike
    /// [`Reconciler::run`] this never aborts on a backend error: every
    /// failure is retried, degraded around, or skipped-and-reported.
    pub fn run(&mut self, reconciler: &mut Reconciler) -> RunStats {
        self.run_with(reconciler, &mut NoopSink)
    }

    /// Like [`ResilientDriver::run`], streaming rounds, retries,
    /// breaker transitions, and degraded-round events into `sink`.
    pub fn run_with<S: TelemetrySink>(
        &mut self,
        reconciler: &mut Reconciler,
        sink: &mut S,
    ) -> RunStats {
        while self.backend.advance_with(sink).is_some() {
            self.round_with(reconciler, sink);
        }
        *reconciler.stats()
    }

    /// One driver round at the backend's current time: breaker
    /// bookkeeping, then the observe/plan/apply ladder.
    pub fn round_with<S: TelemetrySink>(&mut self, reconciler: &mut Reconciler, sink: &mut S) {
        self.stats.rounds += 1;
        let at = self.backend.now();
        match self.breaker {
            BreakerState::Open => {
                if self.cooldown_left > 1 {
                    self.cooldown_left -= 1;
                    self.skip_round(at, "breaker-open", sink);
                    return;
                }
                // Cooldown over: probe this round with a single
                // attempt instead of skipping it.
                self.cooldown_left = 0;
                self.transition(at, BreakerState::HalfOpen, sink);
            }
            BreakerState::Closed | BreakerState::HalfOpen => {}
        }
        let attempts = if self.breaker == BreakerState::HalfOpen {
            1
        } else {
            self.cfg.retry.max_attempts
        };
        let observed = self.observe_with_retry(at, attempts, sink);
        self.stats.observe_retries += observed.retries;
        match observed.value {
            Ok(snapshot) => {
                self.detect_drift(&snapshot, sink);
                self.plan_and_apply(snapshot, reconciler, attempts, false, sink);
            }
            Err(_) => {
                self.stats.observe_failures += 1;
                self.degraded_round(at, reconciler, attempts, sink);
            }
        }
    }

    /// Plan on the snapshot and apply with retry. A non-degraded round
    /// that fully succeeds resets the failure streak and closes the
    /// breaker; a degraded (stale-tolerated) round leaves the streak
    /// alone on success — the API is still refusing observes, and the
    /// staleness window, not the breaker, bounds how long the loop may
    /// steer on the cache.
    fn plan_and_apply<S: TelemetrySink>(
        &mut self,
        snapshot: ClusterSnapshot,
        reconciler: &mut Reconciler,
        attempts: u32,
        degraded: bool,
        sink: &mut S,
    ) {
        let at = self.backend.now();
        if !degraded {
            self.last_snapshot = Some(snapshot.clone());
        }
        let planned = reconciler.plan_with(&snapshot, sink);
        let desired = planned.desired.clone();
        let applied = self.apply_with_retry(at, &desired, attempts, sink);
        self.stats.apply_retries += applied.retries;
        match applied.value {
            Ok(actuation) => {
                reconciler.complete_round_with(&snapshot, planned, &actuation, sink);
                self.last_desired = Some(desired);
                if !degraded {
                    self.stats.ok_rounds += 1;
                    self.round_succeeded(at, sink);
                }
            }
            Err(e) => {
                self.stats.apply_failures += 1;
                // Record the round with what (if anything) landed, so
                // jobs_failed surfaces in RunStats instead of the
                // round silently vanishing.
                let landed = match e {
                    BackendError::PartialApply { applied } => applied,
                    // Spelled out (not `_`) so a new BackendError
                    // variant forces a decision here about what, if
                    // anything, landed before the failure.
                    BackendError::Timeout { .. }
                    | BackendError::Unavailable { .. }
                    | BackendError::StaleSnapshot { .. } => 0,
                };
                let actuation = ActuationReport {
                    jobs_applied: landed,
                    jobs_failed: (desired.len() as u32).saturating_sub(landed),
                    replicas_started: faro_core::units::ReplicaCount::ZERO,
                };
                reconciler.complete_round_with(&snapshot, planned, &actuation, sink);
                // A partial apply did land a prefix; remember the
                // intent so drift detection re-checks it next round.
                self.last_desired = Some(desired);
                self.round_failed(at, sink);
            }
        }
    }

    /// Observe gave up: tolerate a stale cached snapshot, else
    /// carry-forward the last desired state, else skip-and-report.
    fn degraded_round<S: TelemetrySink>(
        &mut self,
        at: SimTimeMs,
        reconciler: &mut Reconciler,
        attempts: u32,
        sink: &mut S,
    ) {
        let tolerable = self.last_snapshot.as_ref().and_then(|cached| {
            let age = at.saturating_duration_since(cached.now);
            (age <= self.cfg.staleness_window).then(|| cached.clone())
        });
        if let Some(snapshot) = tolerable {
            self.stats.stale_tolerated_rounds += 1;
            if sink.enabled() {
                sink.event(
                    at,
                    &TelemetryEvent::DegradedRound {
                        kind: "stale-snapshot".to_owned(),
                    },
                );
            }
            self.plan_and_apply(snapshot, reconciler, attempts, true, sink);
            return;
        }
        if let Some(desired) = self.last_desired.clone() {
            self.stats.carry_forward_rounds += 1;
            if sink.enabled() {
                sink.event(
                    at,
                    &TelemetryEvent::DegradedRound {
                        kind: "carry-forward".to_owned(),
                    },
                );
            }
            let applied = self.apply_with_retry(at, &desired, attempts, sink);
            self.stats.apply_retries += applied.retries;
            if applied.value.is_err() {
                self.stats.apply_failures += 1;
            }
            self.round_failed(at, sink);
            return;
        }
        self.skip_round(at, "skipped", sink);
        self.round_failed(at, sink);
    }

    fn skip_round<S: TelemetrySink>(&mut self, at: SimTimeMs, kind: &str, sink: &mut S) {
        self.stats.skipped_rounds += 1;
        if sink.enabled() {
            sink.event(
                at,
                &TelemetryEvent::DegradedRound {
                    kind: kind.to_owned(),
                },
            );
        }
    }

    /// Compares a fresh snapshot against the last applied desired
    /// state; targets that drifted (external interference, a partial
    /// apply that lost jobs) are reported. The round's apply is the
    /// repair.
    fn detect_drift<S: TelemetrySink>(&mut self, snapshot: &ClusterSnapshot, sink: &mut S) {
        let Some(desired) = &self.last_desired else {
            return;
        };
        let mut drifted = Vec::new();
        for (id, d) in desired.iter() {
            let Some(obs) = snapshot.jobs.get(id.index()) else {
                continue;
            };
            if obs.target_replicas != d.target_replicas {
                drifted.push(id.index());
            }
        }
        if drifted.is_empty() {
            return;
        }
        self.stats.drift_repairs += 1;
        if sink.enabled() {
            sink.event(
                snapshot.now,
                &TelemetryEvent::DriftDetected { jobs: drifted },
            );
        }
    }

    fn round_succeeded<S: TelemetrySink>(&mut self, at: SimTimeMs, sink: &mut S) {
        self.consecutive_failures = 0;
        if self.breaker != BreakerState::Closed {
            self.transition(at, BreakerState::Closed, sink);
        }
    }

    fn round_failed<S: TelemetrySink>(&mut self, at: SimTimeMs, sink: &mut S) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = match self.breaker {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.cfg.breaker_threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.stats.breaker_opens += 1;
            self.cooldown_left = self.cfg.breaker_cooldown_rounds.max(1);
            self.transition(at, BreakerState::Open, sink);
        }
    }

    fn transition<S: TelemetrySink>(&mut self, at: SimTimeMs, to: BreakerState, sink: &mut S) {
        let from = self.breaker;
        self.breaker = to;
        if sink.enabled() && from != to {
            sink.event(
                at,
                &TelemetryEvent::BreakerTransition {
                    from: from.as_str().to_owned(),
                    to: to.as_str().to_owned(),
                },
            );
        }
    }

    fn observe_with_retry<S: TelemetrySink>(
        &mut self,
        at: SimTimeMs,
        max_attempts: u32,
        sink: &mut S,
    ) -> Retried<ClusterSnapshot> {
        let budget = self.cfg.observe_budget;
        let mut spent = DurationMs::ZERO;
        let mut attempt = 0u32;
        let mut retries = 0u64;
        loop {
            attempt += 1;
            let value = self.backend.observe().and_then(|snapshot| {
                // A served snapshot can itself be stale (a chaos or
                // live backend replaying a cache); past the window it
                // counts as a failure and is retried like one.
                let age = at.saturating_duration_since(snapshot.now);
                if age > self.cfg.staleness_window {
                    Err(BackendError::StaleSnapshot { age })
                } else {
                    Ok(snapshot)
                }
            });
            let err = match value {
                Ok(snapshot) => {
                    return Retried {
                        value: Ok(snapshot),
                        retries,
                    }
                }
                Err(e) => e,
            };
            let Some(delay) = self.next_backoff(attempt, max_attempts, spent, budget, &err) else {
                return Retried {
                    value: Err(err),
                    retries,
                };
            };
            spent = spent + delay;
            retries += 1;
            if sink.enabled() {
                sink.event(
                    at,
                    &TelemetryEvent::BackendRetry {
                        phase: "observe".to_owned(),
                        attempt,
                        backoff_ms: delay.as_millis(),
                        error: err.to_string(),
                    },
                );
            }
        }
    }

    fn apply_with_retry<S: TelemetrySink>(
        &mut self,
        at: SimTimeMs,
        desired: &DesiredState,
        max_attempts: u32,
        sink: &mut S,
    ) -> Retried<ActuationReport> {
        let budget = self.cfg.apply_budget;
        let mut spent = DurationMs::ZERO;
        let mut attempt = 0u32;
        let mut retries = 0u64;
        // Replicas started by a failed partial attempt did start (and
        // emitted their ColdStartBegan events); the report of the
        // eventually-successful attempt covers only its own starts, so
        // replica accounting can undercount under chaos. Acceptable:
        // the events stream is the source of truth for lifecycle.
        loop {
            attempt += 1;
            let value = self.backend.apply_with(desired, dyn_sink(sink));
            let err = match value {
                Ok(report) => {
                    return Retried {
                        value: Ok(report),
                        retries,
                    };
                }
                Err(e) => e,
            };
            let Some(delay) = self.next_backoff(attempt, max_attempts, spent, budget, &err) else {
                return Retried {
                    value: Err(err),
                    retries,
                };
            };
            spent = spent + delay;
            retries += 1;
            if sink.enabled() {
                sink.event(
                    at,
                    &TelemetryEvent::BackendRetry {
                        phase: "apply".to_owned(),
                        attempt,
                        backoff_ms: delay.as_millis(),
                        error: err.to_string(),
                    },
                );
            }
        }
    }

    /// The next virtual backoff delay, or `None` when retrying must
    /// stop (attempts exhausted, budget exhausted, or the error is not
    /// retryable). Exponential from `base`, capped at `max`, jittered
    /// into `[d/2, d)` by the seeded stream.
    fn next_backoff(
        &mut self,
        attempt: u32,
        max_attempts: u32,
        spent: DurationMs,
        budget: DurationMs,
        err: &BackendError,
    ) -> Option<DurationMs> {
        if !err.is_retryable() || attempt >= max_attempts {
            return None;
        }
        let base = self.cfg.retry.base_backoff.as_millis().max(1);
        let cap = self.cfg.retry.max_backoff.as_millis().max(base);
        let exp = base.saturating_mul(1i64.checked_shl(attempt - 1).unwrap_or(i64::MAX));
        let d = exp.min(cap);
        let half = (d / 2).max(1);
        let jittered = half + (self.jitter.next_u64() % (half as u64).max(1)) as i64;
        let delay = DurationMs::from_millis(jittered.min(d));
        if spent + delay > budget {
            return None;
        }
        Some(delay)
    }
}

/// Reborrows a generic sink as the `&mut dyn` the object-safe
/// `apply_with` entry point takes.
fn dyn_sink<S: TelemetrySink>(sink: &mut S) -> &mut dyn TelemetrySink {
    sink
}
