//! The Observe → Decide → Admit → Actuate loop.

use crate::backend::{ActuationReport, BackendError, ClusterBackend};
use faro_core::admission::{Admission, AdmissionOutcome};
use faro_core::policy::{Policy, PolicyIntrospection};
use faro_core::types::{ClusterSnapshot, DesiredState, JobId};
use faro_core::units::SimTimeMs;
use faro_telemetry::{
    DecisionRecord, JobRound, NoopSink, Phase, Sample, TelemetryEvent, TelemetrySink,
};
use serde::Serialize;

/// Cumulative admission accounting across a run — the reconciler's
/// answer to quota enforcement that used to fail silently: every
/// trimmed or unsatisfiable round is counted here instead of being
/// dropped on the floor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct AdmissionStats {
    /// Total replicas requested across all rounds.
    pub requested_replicas: u64,
    /// Total replicas granted across all rounds.
    pub granted_replicas: u64,
    /// Rounds in which admission trimmed at least one request.
    pub clamped_rounds: u64,
    /// Rounds in which the quota was unsatisfiable (every job already
    /// at the 1-replica floor, total still above quota).
    pub unsatisfiable_rounds: u64,
}

impl AdmissionStats {
    fn record(&mut self, outcome: &AdmissionOutcome) {
        self.requested_replicas += u64::from(outcome.requested_replicas);
        self.granted_replicas += u64::from(outcome.granted_replicas);
        if outcome.clamped() {
            self.clamped_rounds += 1;
        }
        if outcome.unsatisfiable() {
            self.unsatisfiable_rounds += 1;
        }
    }

    /// Replicas requested but never granted, across the whole run.
    pub fn shortfall(&self) -> u64 {
        self.requested_replicas
            .saturating_sub(self.granted_replicas)
    }
}

/// The reconciler's run report: how many rounds ran and what admission
/// and actuation did over the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RunStats {
    /// Reconcile rounds executed.
    pub rounds: u64,
    /// Cumulative admission accounting.
    pub admission: AdmissionStats,
    /// Replicas started (entered cold start) across all rounds.
    pub replicas_started: u64,
    /// Jobs whose decision failed to apply across all rounds (unknown
    /// jobs, or partial applies that never completed) — previously
    /// these were silently under-counted as "not applied".
    pub jobs_failed: u64,
}

/// The Decide + Admit half of a round, produced by
/// [`Reconciler::plan_with`] on a caller-provided snapshot and
/// consumed by [`Reconciler::complete_round_with`] once actuation has
/// (or has not) happened. Splitting the round this way lets a
/// resilient driver own the fallible Observe/Actuate edges while the
/// reconciler keeps owning policy, admission, and accounting.
pub struct PlannedRound {
    /// The admitted desired state — what actuation should apply.
    pub desired: DesiredState,
    /// What admission granted this round.
    pub admission: AdmissionOutcome,
    /// The pre-admission request, kept only when a sink is listening
    /// (it exists solely for the decision record).
    pub(crate) requested: Option<DesiredState>,
    pub(crate) intro: PolicyIntrospection,
}

/// What one reconcile round produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconcileOutcome {
    /// Time of the round.
    pub at: SimTimeMs,
    /// What admission granted this round.
    pub admission: AdmissionOutcome,
    /// What actuation changed this round.
    pub actuation: ActuationReport,
}

/// Runs the control loop: each round observes the backend, asks the
/// policy for a desired state, admits it against the cluster quota,
/// and actuates the result.
///
/// The reconciler owns the policy and the admission strategy; the
/// backend is borrowed per call so one reconciler can drive simulated
/// and real clusters alike.
pub struct Reconciler {
    policy: Box<dyn Policy>,
    admission: Box<dyn Admission>,
    stats: RunStats,
}

impl Reconciler {
    /// Composes a policy with a cluster-level admission strategy.
    pub fn new(policy: Box<dyn Policy>, admission: Box<dyn Admission>) -> Self {
        Self {
            policy,
            admission,
            stats: RunStats::default(),
        }
    }

    /// The composed policy's display name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Accumulated run statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// One Observe → Decide → Admit → Actuate round at the backend's
    /// current time.
    ///
    /// # Errors
    ///
    /// Propagates the first [`BackendError`] from `observe` or `apply`
    /// untouched; the round's stats are not recorded. Retry/degraded
    /// handling is deliberately not done here — wrap the backend in a
    /// [`ResilientDriver`](crate::ResilientDriver) for that.
    pub fn reconcile<B: ClusterBackend + ?Sized>(
        &mut self,
        backend: &mut B,
    ) -> Result<ReconcileOutcome, BackendError> {
        self.reconcile_with(backend, &mut NoopSink)
    }

    /// Like [`Reconciler::reconcile`], streaming the round into a
    /// telemetry sink: one deterministic work span per phase (jobs
    /// observed, solver evaluations, replicas trimmed, replicas
    /// started), per-job queue-depth samples, and a full
    /// [`DecisionRecord`] of requested-vs-granted allocations with the
    /// policy's solve introspection.
    ///
    /// With [`NoopSink`] this monomorphizes to exactly the un-traced
    /// round: every sink call is an empty inlined body and the
    /// requested-state clone is skipped (`sink.enabled()` is `false`).
    ///
    /// # Errors
    ///
    /// Same contract as [`Reconciler::reconcile`].
    pub fn reconcile_with<B, S>(
        &mut self,
        backend: &mut B,
        sink: &mut S,
    ) -> Result<ReconcileOutcome, BackendError>
    where
        B: ClusterBackend + ?Sized,
        S: TelemetrySink,
    {
        let snapshot = backend.observe()?;
        let planned = self.plan_with(&snapshot, sink);
        let actuation = backend.apply_with(&planned.desired, sink)?;
        Ok(self.complete_round_with(&snapshot, planned, &actuation, sink))
    }

    /// The Decide + Admit half of a round on a caller-provided
    /// snapshot: emits the Observe/Decide/Admit spans, runs the policy
    /// and admission, and returns the admitted state plus the context
    /// [`Reconciler::complete_round_with`] needs to finish the round's
    /// accounting. [`Reconciler::reconcile_with`] is exactly
    /// `observe`? → `plan_with` → `apply_with`? →
    /// `complete_round_with`; resilient drivers call the halves
    /// directly so they can retry the fallible edges in between.
    pub fn plan_with<S: TelemetrySink>(
        &mut self,
        snapshot: &ClusterSnapshot,
        sink: &mut S,
    ) -> PlannedRound {
        let at = snapshot.now;
        sink.span(at, Phase::Observe, snapshot.jobs.len() as u64);
        let mut desired = self.policy.decide(snapshot);
        let intro = self.policy.introspect();
        sink.span(at, Phase::Decide, intro.solver_evals);
        // Sharded decide rounds break the Decide span down per solved
        // shard and summarize the round's cache behavior; the global
        // path emits neither.
        for span in &intro.shard_spans {
            sink.span(at, Phase::ShardSolve, span.evals);
        }
        if sink.enabled() {
            if let Some(rec) = &intro.shard_record {
                sink.event(
                    at,
                    &TelemetryEvent::ShardSolve {
                        shards: rec.shards,
                        solved: rec.solved,
                        skipped: rec.skipped,
                        cache_hit_jobs: rec.cache_hit_jobs,
                        evals: rec.evals,
                        split_evals: rec.split_evals,
                    },
                );
            }
        }
        // The pre-admission request is only needed for the decision
        // record; skip the clone when nobody is listening.
        let requested = sink.enabled().then(|| desired.clone());
        let admission = self.admission.admit(snapshot, &mut desired);
        sink.span(at, Phase::Admit, u64::from(admission.shortfall()));
        PlannedRound {
            desired,
            admission,
            requested,
            intro,
        }
    }

    /// Commits a planned round's actuation outcome: emits the Actuate
    /// span, folds the round into [`RunStats`], and emits the per-job
    /// samples and the [`DecisionRecord`] when a sink is listening.
    pub fn complete_round_with<S: TelemetrySink>(
        &mut self,
        snapshot: &ClusterSnapshot,
        planned: PlannedRound,
        actuation: &ActuationReport,
        sink: &mut S,
    ) -> ReconcileOutcome {
        let at = snapshot.now;
        let PlannedRound {
            desired,
            admission,
            requested,
            intro,
        } = planned;
        sink.span(
            at,
            Phase::Actuate,
            u64::from(actuation.replicas_started.get()),
        );
        self.stats.rounds += 1;
        self.stats.admission.record(&admission);
        self.stats.replicas_started += u64::from(actuation.replicas_started.get());
        self.stats.jobs_failed += u64::from(actuation.jobs_failed);
        if let Some(requested) = requested {
            for (j, obs) in snapshot.jobs.iter().enumerate() {
                sink.sample(at, Sample::QueueDepth, Some(j), obs.queue_len as f64);
            }
            if intro.long_term_solve {
                sink.sample(at, Sample::SolveEvals, None, intro.solver_evals as f64);
            }
            let record = decision_record(
                self.stats.rounds,
                snapshot,
                &requested,
                &desired,
                &admission,
                actuation,
                intro,
            );
            sink.event(at, &TelemetryEvent::Decision { record });
        }
        ReconcileOutcome {
            at,
            admission,
            actuation: *actuation,
        }
    }

    /// Runs the loop until the backend's clock runs out, returning the
    /// run report.
    ///
    /// # Errors
    ///
    /// Stops at the first [`BackendError`] and propagates it; rounds
    /// already completed stay recorded in [`Reconciler::stats`].
    pub fn run<B: ClusterBackend + ?Sized>(
        &mut self,
        backend: &mut B,
    ) -> Result<RunStats, BackendError> {
        while backend.advance().is_some() {
            self.reconcile(backend)?;
        }
        Ok(self.stats)
    }

    /// Like [`Reconciler::run`], streaming the whole run — including
    /// the backend's between-round activity via
    /// [`Clock::advance_with`](crate::Clock::advance_with) — into a
    /// telemetry sink.
    ///
    /// # Errors
    ///
    /// Same contract as [`Reconciler::run`].
    pub fn run_with<B, S>(
        &mut self,
        backend: &mut B,
        sink: &mut S,
    ) -> Result<RunStats, BackendError>
    where
        B: ClusterBackend + ?Sized,
        S: TelemetrySink,
    {
        while backend.advance_with(sink).is_some() {
            self.reconcile_with(backend, sink)?;
        }
        Ok(self.stats)
    }
}

/// Assembles the per-round decision record from the observed snapshot,
/// the pre-admission request, and the granted (actuated) state. Jobs
/// absent from a state fall back to their observed targets, matching
/// actuation's "absent means untouched" semantics.
fn decision_record(
    round: u64,
    snapshot: &ClusterSnapshot,
    requested: &DesiredState,
    granted: &DesiredState,
    admission: &AdmissionOutcome,
    actuation: &ActuationReport,
    intro: PolicyIntrospection,
) -> DecisionRecord {
    let jobs = snapshot
        .jobs
        .iter()
        .enumerate()
        .map(|(j, obs)| {
            let id = JobId::new(j);
            let req = requested
                .get(id)
                .map_or(obs.target_replicas, |d| d.target_replicas);
            let grant = granted.get(id);
            JobRound {
                job: j,
                requested_replicas: req,
                granted_replicas: grant.map_or(obs.target_replicas, |d| d.target_replicas),
                ready_replicas: obs.ready_replicas,
                queue_depth: obs.queue_len as u64,
                tail_latency: obs.recent_tail_latency,
                slo_latency: obs.spec.slo.latency,
                slo_attained: obs.recent_tail_latency <= obs.spec.slo.latency,
                drop_rate: grant.map_or(obs.drop_rate, |d| d.drop_rate),
            }
        })
        .collect();
    DecisionRecord {
        round,
        at: snapshot.now,
        quota: snapshot.replica_quota().get(),
        requested_replicas: admission.requested_replicas,
        granted_replicas: admission.granted_replicas,
        clamped: admission.clamped(),
        unsatisfiable: admission.unsatisfiable(),
        replicas_started: actuation.replicas_started.get(),
        jobs_applied: actuation.jobs_applied,
        solver_evals: intro.solver_evals,
        long_term_solve: intro.long_term_solve,
        carried_forward: intro.carried_forward,
        sanitized_samples: intro.sanitized_samples,
        jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use faro_core::admission::{OutageClamp, Unlimited};
    use faro_core::types::{
        ClusterSnapshot, DesiredState, JobDecision, JobObservation, JobSpec, ResourceModel,
    };
    use std::sync::Arc;

    /// A minimal in-memory backend: fixed tick, fixed horizon, targets
    /// applied instantly.
    struct MemBackend {
        now: SimTimeMs,
        tick: faro_core::units::DurationMs,
        end: SimTimeMs,
        quota: u32,
        targets: Vec<u32>,
        applies: Vec<Vec<(usize, u32)>>,
    }

    impl MemBackend {
        fn new(quota: u32, jobs: usize) -> Self {
            Self {
                now: SimTimeMs::from_secs(-10.0),
                tick: faro_core::units::DurationMs::from_secs(10.0),
                end: SimTimeMs::from_secs(100.0),
                quota,
                targets: vec![1; jobs],
                applies: Vec::new(),
            }
        }
    }

    impl Clock for MemBackend {
        fn now(&self) -> SimTimeMs {
            self.now
        }

        fn advance(&mut self) -> Option<SimTimeMs> {
            let next = self.now + self.tick;
            if next >= self.end {
                return None;
            }
            self.now = next;
            Some(next)
        }
    }

    impl ClusterBackend for MemBackend {
        fn observe(&mut self) -> Result<ClusterSnapshot, BackendError> {
            let jobs = self
                .targets
                .iter()
                .map(|&t| JobObservation {
                    spec: Arc::new(JobSpec::resnet34("mem")),
                    target_replicas: t,
                    ready_replicas: t,
                    queue_len: 0,
                    arrival_rate_history: Arc::new(vec![
                        faro_core::units::RatePerMin::new(60.0);
                        10
                    ]),
                    recent_arrival_rate: 1.0,
                    mean_processing_time: 0.18,
                    recent_tail_latency: 0.2,
                    drop_rate: 0.0,
                    class_target: None,
                    class_ready: None,
                })
                .collect();
            Ok(ClusterSnapshot {
                now: self.now,
                resources: ResourceModel::replicas(faro_core::units::ReplicaCount::new(self.quota)),
                jobs,
            })
        }

        fn apply(&mut self, desired: &DesiredState) -> Result<ActuationReport, BackendError> {
            let mut report = ActuationReport::default();
            let mut applied = Vec::new();
            for (id, d) in desired.iter() {
                if let Some(t) = self.targets.get_mut(id.index()) {
                    report.replicas_started += d.target_replicas.saturating_sub(*t);
                    *t = d.target_replicas;
                    report.jobs_applied += 1;
                    applied.push((id.index(), d.target_replicas));
                } else {
                    report.jobs_failed += 1;
                }
            }
            self.applies.push(applied);
            Ok(report)
        }
    }

    /// Requests a fixed target for every job, every round.
    struct Want(u32);

    impl Policy for Want {
        fn name(&self) -> &str {
            "want"
        }

        fn decide(&mut self, snapshot: &ClusterSnapshot) -> DesiredState {
            snapshot
                .job_ids()
                .map(|id| (id, JobDecision::replicas(self.0)))
                .collect()
        }
    }

    #[test]
    fn runs_until_the_clock_expires_and_accumulates_stats() {
        let mut backend = MemBackend::new(16, 2);
        let mut rec = Reconciler::new(Box::new(Want(4)), Box::new(Unlimited));
        let stats = rec.run(&mut backend).unwrap();
        // Ticks at 0, 10, ..., 90 -> 10 rounds.
        assert_eq!(stats.rounds, 10);
        assert_eq!(backend.applies.len(), 10);
        assert_eq!(backend.targets, vec![4, 4]);
        // Round 1 started 3 replicas per job; later rounds none.
        assert_eq!(stats.replicas_started, 6);
        assert_eq!(stats.admission.requested_replicas, 80);
        assert_eq!(stats.admission.granted_replicas, 80);
        assert_eq!(stats.admission.shortfall(), 0);
        assert_eq!(rec.policy_name(), "want");
    }

    #[test]
    fn admission_sits_between_decide_and_apply() {
        // Quota 6 against a request of 2 x 8: the clamp must be what
        // reaches the backend.
        let mut backend = MemBackend::new(6, 2);
        let mut rec = Reconciler::new(Box::new(Want(8)), Box::new(OutageClamp::new(16)));
        backend.advance();
        let out = rec.reconcile(&mut backend).unwrap();
        assert!(out.admission.clamped());
        assert_eq!(out.admission.granted_replicas, 6);
        assert_eq!(backend.targets.iter().sum::<u32>(), 6);
        assert_eq!(out.actuation.jobs_applied, 2);
        assert_eq!(rec.stats().admission.clamped_rounds, 1);
    }

    #[test]
    fn unsatisfiable_rounds_are_reported_not_swallowed() {
        // 3 jobs, quota 2: even the all-ones floor exceeds the quota.
        let mut backend = MemBackend::new(2, 3);
        let mut rec = Reconciler::new(Box::new(Want(1)), Box::new(OutageClamp::new(16)));
        let stats = rec.run(&mut backend).unwrap();
        assert_eq!(stats.admission.unsatisfiable_rounds, stats.rounds);
        assert!(stats.admission.shortfall() == 0, "nothing was trimmed");
    }

    #[test]
    fn reconcile_with_records_requested_vs_granted() {
        let mut backend = MemBackend::new(6, 2);
        let mut rec = Reconciler::new(Box::new(Want(8)), Box::new(OutageClamp::new(16)));
        let mut sink = faro_telemetry::TraceSink::new();
        backend.advance();
        rec.reconcile_with(&mut backend, &mut sink).unwrap();
        assert_eq!(sink.len(), 1);
        let entry = sink.entries().next().unwrap();
        let TelemetryEvent::Decision { record } = &entry.event else {
            panic!("expected a decision record, got {}", entry.event.kind());
        };
        assert_eq!(record.round, 1);
        assert_eq!(record.quota, 6);
        assert_eq!(record.requested_replicas, 16);
        assert_eq!(record.granted_replicas, 6);
        assert!(record.clamped);
        assert!(!record.unsatisfiable);
        assert_eq!(record.jobs.len(), 2);
        for job in &record.jobs {
            assert_eq!(job.requested_replicas, 8);
            assert_eq!(job.granted_replicas, 3);
        }
    }

    #[test]
    fn reconcile_with_spans_measure_deterministic_work() {
        let mut backend = MemBackend::new(16, 3);
        let mut rec = Reconciler::new(Box::new(Want(4)), Box::new(Unlimited));
        let mut sink = faro_telemetry::AggregateSink::new();
        rec.run_with(&mut backend, &mut sink).unwrap();
        let observe = sink.span_stats(Phase::Observe);
        assert_eq!(observe.rounds, 10);
        assert_eq!(observe.max_work, 3, "observe work = jobs observed");
        let actuate = sink.span_stats(Phase::Actuate);
        // Round 1 starts 3 replicas per job; later rounds start none.
        assert_eq!(actuate.total_work, 9);
        assert_eq!(sink.counter_total(faro_telemetry::Counter::Rounds), 10);
    }

    #[test]
    fn noop_sink_path_matches_plain_reconcile() {
        let mut plain = MemBackend::new(6, 2);
        let mut traced = MemBackend::new(6, 2);
        let mut rec_a = Reconciler::new(Box::new(Want(8)), Box::new(OutageClamp::new(16)));
        let mut rec_b = Reconciler::new(Box::new(Want(8)), Box::new(OutageClamp::new(16)));
        let a = rec_a.run(&mut plain).unwrap();
        let b = rec_b.run_with(&mut traced, &mut NoopSink).unwrap();
        assert_eq!(a, b);
        assert_eq!(plain.applies, traced.applies);
    }

    #[test]
    fn run_stats_serialize() {
        let mut backend = MemBackend::new(16, 1);
        let mut rec = Reconciler::new(Box::new(Want(2)), Box::new(Unlimited));
        let stats = rec.run(&mut backend).unwrap();
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"rounds\":10"), "{json}");
        assert!(json.contains("unsatisfiable_rounds"), "{json}");
    }
}
