//! The M/M/c queue: Poisson arrivals, exponential service, `c` servers.
//!
//! Faro uses M/M/c as a stepping stone to M/D/c: by Tijms' engineering
//! approximation, the M/D/c waiting time is about half the M/M/c waiting
//! time (see [`crate::mdc`]).
//!
//! The waiting-time distribution of a stable M/M/c queue is
//! `P(W <= t) = 1 - C(c, a) * exp(-(c*mu - lambda) * t)` where `C` is the
//! Erlang-C probability of waiting, `mu = 1/p`, and `a = lambda * p`.

use crate::erlang::erlang_c;
use crate::error::{percentile, positive, Error, Result};
use crate::ReplicaCount;

/// Utilization `rho = lambda * p / c` of a `c`-server queue.
///
/// # Examples
///
/// ```
/// use faro_queueing::ReplicaCount;
/// let rho = faro_queueing::mmc::utilization(40.0, 0.150, ReplicaCount::new(8)).unwrap();
/// assert!((rho - 0.75).abs() < 1e-12);
/// ```
pub fn utilization(lambda: f64, p: f64, servers: ReplicaCount) -> Result<f64> {
    if servers.is_zero() {
        return Err(Error::ZeroReplicas);
    }
    let lambda = crate::error::non_negative("lambda", lambda)?;
    let p = positive("p", p)?;
    Ok(lambda * p / servers.as_f64())
}

/// Mean waiting time (time in queue, excluding service) of a stable
/// M/M/c queue. Returns [`f64::INFINITY`] when `rho >= 1`.
pub fn mean_wait(lambda: f64, p: f64, servers: ReplicaCount) -> Result<f64> {
    let rho = utilization(lambda, p, servers)?;
    if rho >= 1.0 {
        return Ok(f64::INFINITY);
    }
    if lambda == 0.0 {
        return Ok(0.0);
    }
    let c = erlang_c(servers, lambda * p)?;
    let cmu_minus_lambda = servers.as_f64() / p - lambda;
    Ok(c / cmu_minus_lambda)
}

/// The `k`-th percentile (`0 < k < 1`) of the waiting time of a stable
/// M/M/c queue. Returns [`f64::INFINITY`] when `rho >= 1`.
///
/// Derived from the closed-form distribution: the percentile is `0` when
/// `C <= 1 - k` (enough arrivals do not wait at all), otherwise
/// `ln(C / (1-k)) / (c*mu - lambda)`.
///
/// # Examples
///
/// ```
/// use faro_queueing::ReplicaCount;
/// // Lightly loaded queue: the median wait is zero.
/// let w = faro_queueing::mmc::wait_percentile(0.5, 0.1, 1.0, ReplicaCount::new(4)).unwrap();
/// assert_eq!(w, 0.0);
/// ```
pub fn wait_percentile(k: f64, p: f64, lambda: f64, servers: ReplicaCount) -> Result<f64> {
    let k = percentile(k)?;
    let rho = utilization(lambda, p, servers)?;
    if rho >= 1.0 {
        return Ok(f64::INFINITY);
    }
    if lambda == 0.0 {
        return Ok(0.0);
    }
    let c = erlang_c(servers, lambda * p)?;
    let tail = 1.0 - k;
    if c <= tail {
        return Ok(0.0);
    }
    let cmu_minus_lambda = servers.as_f64() / p - lambda;
    Ok((c / tail).ln() / cmu_minus_lambda)
}

/// The `k`-th percentile of *latency* (waiting plus one deterministic
/// service time `p`). Faro treats the inference time as deterministic, so
/// latency is the waiting percentile shifted by `p`.
pub fn latency_percentile(k: f64, p: f64, lambda: f64, servers: ReplicaCount) -> Result<f64> {
    Ok(wait_percentile(k, p, lambda, servers)? + p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_distr::Exp;

    fn rc(n: u32) -> ReplicaCount {
        ReplicaCount::new(n)
    }

    #[test]
    fn zero_lambda_waits_zero() {
        assert_eq!(mean_wait(0.0, 0.2, rc(2)).unwrap(), 0.0);
        assert_eq!(wait_percentile(0.99, 0.2, 0.0, rc(2)).unwrap(), 0.0);
    }

    #[test]
    fn saturated_queue_is_infinite() {
        assert_eq!(mean_wait(100.0, 0.1, rc(4)).unwrap(), f64::INFINITY);
        assert_eq!(
            wait_percentile(0.9, 0.1, 100.0, rc(4)).unwrap(),
            f64::INFINITY
        );
    }

    #[test]
    fn mm1_mean_wait_matches_closed_form() {
        // M/M/1: Wq = rho / (mu - lambda).
        let (lambda, p) = (4.0, 0.2);
        let mu = 1.0 / p;
        let rho = lambda / mu;
        let expect = rho / (mu - lambda);
        let got = mean_wait(lambda, p, rc(1)).unwrap();
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn percentile_monotone_in_k() {
        let mut prev = -1.0;
        for i in 1..20 {
            let k = f64::from(i) / 20.0;
            let w = wait_percentile(k, 0.15, 45.0, rc(8)).unwrap();
            assert!(w >= prev);
            prev = w;
        }
    }

    #[test]
    fn percentile_decreases_with_more_servers() {
        let w8 = wait_percentile(0.99, 0.15, 40.0, rc(8)).unwrap();
        let w12 = wait_percentile(0.99, 0.15, 40.0, rc(12)).unwrap();
        assert!(w12 <= w8);
    }

    /// Event-driven M/M/c Monte Carlo to validate the closed form.
    fn simulate_mmc_waits(lambda: f64, p: f64, servers: usize, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let inter = Exp::new(lambda).unwrap();
        let service = Exp::new(1.0 / p).unwrap();
        let mut server_free = vec![0.0f64; servers];
        let mut t = 0.0;
        let mut waits = Vec::with_capacity(n);
        for _ in 0..n {
            t += inter.sample(&mut rng);
            // Earliest-free server (FIFO discipline equivalence for waits).
            let (idx, &free) = server_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            let start = free.max(t);
            waits.push(start - t);
            server_free[idx] = start + service.sample(&mut rng);
        }
        waits
    }

    #[test]
    fn closed_form_matches_monte_carlo() {
        let (lambda, p, servers) = (20.0, 0.15, rc(4));
        let mut waits = simulate_mmc_waits(lambda, p, servers.get() as usize, 200_000, 7);
        waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for k in [0.5, 0.9, 0.99] {
            let analytic = wait_percentile(k, p, lambda, servers).unwrap();
            let empirical = waits[((waits.len() as f64) * k) as usize];
            let tol = 0.10 * analytic.max(0.01);
            assert!(
                (analytic - empirical).abs() < tol,
                "k={k}: analytic={analytic} empirical={empirical}"
            );
        }
        let mean_analytic = mean_wait(lambda, p, servers).unwrap();
        let mean_emp: f64 = waits.iter().sum::<f64>() / waits.len() as f64;
        assert!((mean_analytic - mean_emp).abs() < 0.1 * mean_analytic.max(0.01));
    }
}
