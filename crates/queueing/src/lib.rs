//! Queueing-theoretic latency estimation for ML inference autoscaling.
//!
//! This crate implements the latency estimators of Faro (Sec. 3.3 of the
//! paper) and their relaxed variants (Sec. 3.4):
//!
//! - [`upper_bound`]: the pessimistic completion-time bound for a burst of
//!   simultaneous arrivals.
//! - [`mmc`]: the classical M/M/c queue (Poisson arrivals, exponential
//!   service) including Erlang-C and closed-form waiting-time percentiles.
//! - [`mdc`]: the M/D/c queue (Poisson arrivals, deterministic service)
//!   approximated by Tijms' engineering rule "M/D/c waiting time is about
//!   half the M/M/c waiting time".
//! - [`relaxed`]: the plateau-free estimator used inside Faro's relaxed
//!   cluster optimization, which replaces the infinite latency of an
//!   unstable queue with a penalty proportional to the queue growth rate.
//!
//! ML inference workloads show Poisson arrival patterns and low-variance
//! processing times, which is why the M/D/c model fits (paper Sec. 3.3).
//!
//! # Examples
//!
//! ```
//! use faro_queueing::{mdc, relaxed, ReplicaCount};
//!
//! // p = 150 ms, lambda = 40 req/s, N replicas; 99.99th percentile.
//! // The paper reports the M/D/c model needs 8 replicas where the
//! // upper-bound model needs 10, for a 600 ms SLO.
//! let needed = mdc::replicas_for_slo(0.9999, 0.150, 40.0, 0.600, ReplicaCount::new(64)).unwrap();
//! assert!(needed.get() <= 10);
//!
//! // The relaxed estimator stays finite (and increasing) past saturation.
//! let est = relaxed::RelaxedLatency::new(0.95).unwrap();
//! let l1 = est.latency(0.99, 0.150, 100.0, ReplicaCount::new(4)).unwrap();
//! let l2 = est.latency(0.99, 0.150, 200.0, ReplicaCount::new(4)).unwrap();
//! assert!(l2 > l1 && l2.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod count;
pub mod erlang;
pub mod error;
pub mod mdc;
pub mod mixed;
pub mod mmc;
pub mod relaxed;
pub mod upper_bound;

pub use count::ReplicaCount;
pub use error::{Error, Result};
pub use relaxed::RelaxedLatency;
