//! The pessimistic upper-bound completion-time estimator (paper Sec. 3.3).
//!
//! If `kappa` requests arrive simultaneously with `N` replicas and a
//! per-request processing time `p`, all requests finish within
//! `p * kappa / N`. This bound ignores arrival spreading, so it tends to
//! overprovision compared to the M/D/c model.

use crate::error::{non_negative, positive, Error, Result};
use crate::ReplicaCount;

/// Completion time for a burst of `kappa` simultaneous requests on
/// `servers` replicas with per-request processing time `p`.
///
/// # Examples
///
/// ```
/// use faro_queueing::ReplicaCount;
/// let t = faro_queueing::upper_bound::completion_time(0.150, 40.0, ReplicaCount::new(10)).unwrap();
/// assert!((t - 0.6).abs() < 1e-12);
/// ```
pub fn completion_time(p: f64, kappa: f64, servers: ReplicaCount) -> Result<f64> {
    if servers.is_zero() {
        return Err(Error::ZeroReplicas);
    }
    let p = positive("p", p)?;
    let kappa = non_negative("kappa", kappa)?;
    Ok(p * kappa / servers.as_f64())
}

/// Smallest replica count whose upper-bound completion time for a burst
/// of `kappa` requests meets the SLO target `slo`: `ceil(p * kappa / slo)`.
///
/// # Examples
///
/// ```
/// use faro_queueing::ReplicaCount;
/// // Paper Sec. 3.3: p = 150 ms, 40 simultaneous requests, SLO 600 ms
/// // => 10 replicas.
/// let n = faro_queueing::upper_bound::replicas_for_slo(0.150, 40.0, 0.600).unwrap();
/// assert_eq!(n, ReplicaCount::new(10));
/// ```
pub fn replicas_for_slo(p: f64, kappa: f64, slo: f64) -> Result<ReplicaCount> {
    let p = positive("p", p)?;
    let kappa = non_negative("kappa", kappa)?;
    let slo = positive("slo", slo)?;
    let n = (p * kappa / slo).ceil();
    // At least one replica even for zero load.
    Ok(ReplicaCount::new(n as u32).max(ReplicaCount::ONE))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc(n: u32) -> ReplicaCount {
        ReplicaCount::new(n)
    }

    #[test]
    fn completion_scales_linearly() {
        let t1 = completion_time(0.1, 10.0, rc(2)).unwrap();
        let t2 = completion_time(0.1, 20.0, rc(2)).unwrap();
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
        let t4 = completion_time(0.1, 20.0, rc(4)).unwrap();
        assert!((t4 - t1).abs() < 1e-12);
    }

    #[test]
    fn replicas_minimum_one() {
        assert_eq!(replicas_for_slo(0.1, 0.0, 1.0).unwrap(), ReplicaCount::ONE);
    }

    #[test]
    fn replicas_meet_slo_exactly() {
        for kappa in [1.0, 7.0, 40.0, 333.0] {
            let n = replicas_for_slo(0.150, kappa, 0.600).unwrap();
            assert!(completion_time(0.150, kappa, n).unwrap() <= 0.600 + 1e-12);
            if n > ReplicaCount::ONE {
                assert!(
                    completion_time(0.150, kappa, n - ReplicaCount::ONE).unwrap() > 0.600 - 1e-9
                );
            }
        }
    }

    #[test]
    fn rejects_invalid() {
        assert!(completion_time(0.1, 5.0, ReplicaCount::ZERO).is_err());
        assert!(completion_time(-0.1, 5.0, rc(1)).is_err());
        assert!(replicas_for_slo(0.1, 5.0, 0.0).is_err());
    }
}
