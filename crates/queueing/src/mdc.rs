//! The M/D/c queue: Poisson arrivals, deterministic service, `c` servers.
//!
//! ML inference has remarkably stable per-request processing times, so
//! M/D/c is the natural model (paper Sec. 3.3). Exact M/D/c waiting-time
//! distributions exist (Franx 2001) but are expensive; Faro adopts the
//! common engineering approximation (Tijms 2006) of treating the M/D/c
//! waiting time as half the M/M/c waiting time, which this module applies
//! to both the mean and the percentiles.

use crate::error::Result;
use crate::mmc;
use crate::ReplicaCount;

/// Mean waiting time of an M/D/c queue (half the M/M/c mean wait).
pub fn mean_wait(lambda: f64, p: f64, servers: ReplicaCount) -> Result<f64> {
    Ok(0.5 * mmc::mean_wait(lambda, p, servers)?)
}

/// The `k`-th percentile of the M/D/c waiting time, approximated as half
/// the M/M/c percentile. Returns [`f64::INFINITY`] for `rho >= 1`.
pub fn wait_percentile(k: f64, p: f64, lambda: f64, servers: ReplicaCount) -> Result<f64> {
    Ok(0.5 * mmc::wait_percentile(k, p, lambda, servers)?)
}

/// The `k`-th percentile of M/D/c *latency*: approximate waiting
/// percentile plus the deterministic service time `p`.
///
/// This is the `latency_{M/D/c}(k, p, lambda, N)` estimator of the paper
/// (Sec. 3.3): finite for a stable queue (`rho < 1`), infinite otherwise.
///
/// # Examples
///
/// ```
/// use faro_queueing::ReplicaCount;
/// let l = faro_queueing::mdc::latency_percentile(0.99, 0.150, 40.0, ReplicaCount::new(8)).unwrap();
/// assert!(l.is_finite() && l >= 0.150);
/// ```
pub fn latency_percentile(k: f64, p: f64, lambda: f64, servers: ReplicaCount) -> Result<f64> {
    Ok(wait_percentile(k, p, lambda, servers)? + p)
}

/// The `k`-th percentile M/D/c latency for **every** server count
/// `1..=max_servers` in one pass: entry `n - 1` equals
/// `latency_percentile(k, p, lambda, n)` bit-for-bit.
///
/// A single prefix sweep of the Erlang-B recurrence yields `B(n, a)`
/// for all `n` at once, so the whole table costs the same O(max)
/// arithmetic as one direct call at `max_servers` — this is what lets
/// the optimizer build per-solve latency tables instead of re-running
/// the recurrence in its innermost loop.
///
/// # Errors
///
/// Same domain errors as [`latency_percentile`].
///
/// # Examples
///
/// ```
/// use faro_queueing::ReplicaCount;
/// let table =
///     faro_queueing::mdc::latency_percentile_sweep(0.99, 0.150, 40.0, ReplicaCount::new(16))
///         .unwrap();
/// for (i, &l) in table.iter().enumerate() {
///     let direct =
///         faro_queueing::mdc::latency_percentile(0.99, 0.150, 40.0, ReplicaCount::new(i as u32 + 1))
///             .unwrap();
///     assert!(l == direct || (l.is_infinite() && direct.is_infinite()));
/// }
/// ```
pub fn latency_percentile_sweep(
    k: f64,
    p: f64,
    lambda: f64,
    max_servers: ReplicaCount,
) -> Result<Vec<f64>> {
    let k = crate::error::percentile(k)?;
    let p = crate::error::positive("p", p)?;
    let lambda = crate::error::non_negative("lambda", lambda)?;
    if max_servers.is_zero() {
        return Err(crate::Error::ZeroReplicas);
    }
    let a = lambda * p;
    let tail = 1.0 - k;
    let mut out = Vec::with_capacity(max_servers.get() as usize);
    let mut b = 1.0f64;
    for n in 1..=max_servers.get() {
        // One Erlang-B recurrence step: `b` now equals `erlang_b(n, a)`.
        b = a * b / (f64::from(n) + a * b);
        let c = f64::from(n);
        // Mirrors mmc::wait_percentile arithmetically, branch by branch,
        // so each entry is bit-identical to the direct call.
        let rho = lambda * p / c;
        let wait = if rho >= 1.0 {
            f64::INFINITY
        } else if lambda == 0.0 {
            0.0
        } else {
            let ec = b / (1.0 - (a / c) * (1.0 - b));
            if ec <= tail {
                0.0
            } else {
                (ec / tail).ln() / (c / p - lambda)
            }
        };
        out.push(0.5 * wait + p);
    }
    Ok(out)
}

/// Smallest replica count `N <= max_replicas` whose estimated `k`-th
/// percentile latency meets the SLO target `slo`.
///
/// # Errors
///
/// Returns [`crate::Error::Infeasible`] when even `max_replicas` replicas
/// cannot meet the target.
///
/// # Examples
///
/// ```
/// use faro_queueing::ReplicaCount;
/// // Paper Sec. 3.3: p = 150 ms, lambda = 40 req/s, SLO 600 ms.
/// // M/D/c estimates ~8 replicas at the 99.99th percentile, fewer than
/// // the upper-bound model's 10.
/// let n = faro_queueing::mdc::replicas_for_slo(0.9999, 0.150, 40.0, 0.600, ReplicaCount::new(32))
///     .unwrap();
/// assert!(n.get() <= 10);
/// ```
pub fn replicas_for_slo(
    k: f64,
    p: f64,
    lambda: f64,
    slo: f64,
    max_replicas: ReplicaCount,
) -> Result<ReplicaCount> {
    crate::error::positive("slo", slo)?;
    // The latency estimate is monotone non-increasing in N, so binary
    // search over [1, max_replicas] finds the smallest feasible N.
    let feasible = |n: u32| -> Result<bool> {
        Ok(latency_percentile(k, p, lambda, ReplicaCount::new(n))? <= slo)
    };
    if !feasible(max_replicas.get())? {
        return Err(crate::Error::Infeasible {
            max_replicas: max_replicas.get(),
        });
    }
    let (mut lo, mut hi) = (1u32, max_replicas.get());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid)? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(ReplicaCount::new(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upper_bound;
    use rand::prelude::*;
    use rand_distr::Exp;

    fn rc(n: u32) -> ReplicaCount {
        ReplicaCount::new(n)
    }

    #[test]
    fn paper_example_mdc_beats_upper_bound() {
        // p = 150 ms, lambda = 40 req/s, s = 600 ms (paper Sec. 3.3):
        // upper bound says 10 replicas, M/D/c says ~8 at the 99.99th pct.
        let ub = upper_bound::replicas_for_slo(0.150, 40.0, 0.600).unwrap();
        assert_eq!(ub, rc(10));
        let mdc = replicas_for_slo(0.9999, 0.150, 40.0, 0.600, rc(32)).unwrap();
        assert!(
            mdc < ub,
            "M/D/c ({mdc}) should need fewer than upper bound ({ub})"
        );
        assert!((7..=9).contains(&mdc.get()), "expected ~8, got {mdc}");
    }

    #[test]
    fn latency_monotone_in_lambda_and_replicas() {
        let mut prev = 0.0;
        for i in 1..50 {
            let lambda = f64::from(i);
            let l = latency_percentile(0.99, 0.15, lambda, rc(8)).unwrap();
            assert!(l >= prev, "latency must not decrease with load");
            prev = l;
        }
        let mut prev = f64::INFINITY;
        for n in 4..32 {
            let l = latency_percentile(0.99, 0.15, 25.0, rc(n)).unwrap();
            assert!(l <= prev, "latency must not increase with replicas");
            prev = l;
        }
    }

    proptest::proptest! {
        /// The one-pass sweep must be indistinguishable from calling
        /// `latency_percentile` per server count — bit-for-bit, so the
        /// optimizer's memo tables cannot drift from the direct path.
        #[test]
        fn sweep_matches_direct_calls_bitwise(
            lambda in 0.0f64..500.0,
            p in 0.01f64..0.5,
            k in 0.5f64..0.9999,
            max in 1u32..80,
        ) {
            let sweep = latency_percentile_sweep(k, p, lambda, rc(max)).unwrap();
            for n in 1..=max {
                let direct = latency_percentile(k, p, lambda, rc(n)).unwrap();
                let got = sweep[(n - 1) as usize];
                proptest::prop_assert_eq!(
                    got.to_bits(),
                    direct.to_bits(),
                    "n={} sweep={} direct={}",
                    n,
                    got,
                    direct
                );
            }
        }
    }

    #[test]
    fn sweep_handles_zero_rate_and_saturation() {
        let table = latency_percentile_sweep(0.99, 0.15, 0.0, rc(4)).unwrap();
        assert!(table.iter().all(|&l| l == 0.15), "{table:?}");
        // 100 req/s at 150 ms saturates below 15 replicas.
        let table = latency_percentile_sweep(0.99, 0.15, 100.0, rc(20)).unwrap();
        assert!(table[..15].iter().all(|l| l.is_infinite()), "{table:?}");
        assert!(table[15..].iter().all(|l| l.is_finite()), "{table:?}");
        assert!(latency_percentile_sweep(0.99, 0.15, 1.0, ReplicaCount::ZERO).is_err());
    }

    #[test]
    fn infeasible_when_saturated() {
        // 1000 req/s at 150 ms needs at least 150 replicas.
        let err = replicas_for_slo(0.99, 0.150, 1000.0, 0.3, rc(100)).unwrap_err();
        assert_eq!(err, crate::Error::Infeasible { max_replicas: 100 });
    }

    #[test]
    fn replicas_for_slo_is_minimal() {
        let n = replicas_for_slo(0.99, 0.150, 40.0, 0.600, rc(64)).unwrap();
        assert!(latency_percentile(0.99, 0.150, 40.0, n).unwrap() <= 0.600);
        if n > ReplicaCount::ONE {
            assert!(latency_percentile(0.99, 0.150, 40.0, n - ReplicaCount::ONE).unwrap() > 0.600);
        }
    }

    /// Monte Carlo M/D/c: deterministic service, Poisson arrivals.
    fn simulate_mdc_waits(lambda: f64, p: f64, servers: usize, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let inter = Exp::new(lambda).unwrap();
        let mut server_free = vec![0.0f64; servers];
        let mut t = 0.0;
        let mut waits = Vec::with_capacity(n);
        for _ in 0..n {
            t += inter.sample(&mut rng);
            let (idx, &free) = server_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            let start = free.max(t);
            waits.push(start - t);
            server_free[idx] = start + p;
        }
        waits
    }

    #[test]
    fn half_mmc_approximation_is_sane() {
        // The Tijms rule is an engineering approximation; check it is in
        // the right ballpark (within ~35%) at moderate load.
        let (lambda, p, servers) = (20.0, 0.15, rc(4));
        let mut waits = simulate_mdc_waits(lambda, p, servers.get() as usize, 300_000, 11);
        waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean_emp: f64 = waits.iter().sum::<f64>() / waits.len() as f64;
        let mean_est = mean_wait(lambda, p, servers).unwrap();
        assert!(
            (mean_est - mean_emp).abs() < 0.35 * mean_emp.max(0.005),
            "mean: est={mean_est} emp={mean_emp}"
        );
        let p99_emp = waits[(waits.len() as f64 * 0.99) as usize];
        let p99_est = wait_percentile(0.99, p, lambda, servers).unwrap();
        assert!(
            (p99_est - p99_emp).abs() < 0.35 * p99_emp.max(0.01),
            "p99: est={p99_est} emp={p99_emp}"
        );
    }
}
