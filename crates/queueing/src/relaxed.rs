//! Plateau-free ("sloppified") latency estimation (paper Sec. 3.4).
//!
//! The exact M/D/c estimate is infinite whenever the queue is unstable
//! (`rho >= 1`). A constant-infinity region is a *plateau*: a local solver
//! probing inside it sees no gradient and cannot tell how overloaded the
//! job is. Faro removes the plateau by evaluating the estimator at the
//! stability knee `rho_max` and scaling the result by how fast the queue
//! grows (`lambda / lambda_at_rho_max`), which is strictly increasing in
//! `lambda` and strictly decreasing in the replica count.

use crate::error::{percentile, positive, Error, Result};
use crate::mdc;
use crate::ReplicaCount;

/// Relaxed M/D/c latency estimator with a configurable stability knee.
///
/// `rho_max` close to `1.0` tracks the true queue more closely but
/// re-introduces near-plateau behaviour; the paper uses `0.95`.
///
/// # Examples
///
/// ```
/// use faro_queueing::{RelaxedLatency, ReplicaCount};
///
/// let est = RelaxedLatency::default(); // rho_max = 0.95
/// // Past saturation the estimate is finite and grows with load.
/// let a = est.latency(0.99, 0.150, 60.0, ReplicaCount::new(4)).unwrap();
/// let b = est.latency(0.99, 0.150, 120.0, ReplicaCount::new(4)).unwrap();
/// assert!(a.is_finite() && b > a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelaxedLatency {
    rho_max: f64,
}

impl Default for RelaxedLatency {
    /// The paper's default knee, `rho_max = 0.95`.
    fn default() -> Self {
        Self { rho_max: 0.95 }
    }
}

impl RelaxedLatency {
    /// Creates an estimator with the given stability knee.
    ///
    /// # Errors
    ///
    /// `rho_max` must lie strictly inside `(0, 1)`.
    pub fn new(rho_max: f64) -> Result<Self> {
        if !(rho_max.is_finite() && rho_max > 0.0 && rho_max < 1.0) {
            return Err(Error::InvalidParameter {
                name: "rho_max",
                value: rho_max,
            });
        }
        Ok(Self { rho_max })
    }

    /// The configured stability knee.
    pub fn rho_max(&self) -> f64 {
        self.rho_max
    }

    /// Relaxed `k`-th percentile latency estimate. Always finite.
    ///
    /// For `rho <= rho_max` this equals the plain M/D/c estimate. Past the
    /// knee, the estimate at the knee is scaled by `lambda / lambda_knee`,
    /// penalizing latency proportionally to the queue growth rate.
    pub fn latency(&self, k: f64, p: f64, lambda: f64, servers: ReplicaCount) -> Result<f64> {
        let k = percentile(k)?;
        let p = positive("p", p)?;
        let lambda = crate::error::non_negative("lambda", lambda)?;
        if servers.is_zero() {
            return Err(Error::ZeroReplicas);
        }
        let rho = lambda * p / servers.as_f64();
        if rho <= self.rho_max {
            return mdc::latency_percentile(k, p, lambda, servers);
        }
        let lambda_knee = self.rho_max * servers.as_f64() / p;
        let knee_latency = mdc::latency_percentile(k, p, lambda_knee, servers)?;
        Ok(lambda / lambda_knee * knee_latency)
    }

    /// The latency at the stability knee for every server count
    /// `1..=max_servers`: entry `n - 1` is
    /// `mdc::latency_percentile(k, p, rho_max * n / p, n)`, the value
    /// [`RelaxedLatency::latency`] scales past the knee.
    ///
    /// The knee latency is independent of `lambda` (the knee rate is a
    /// function of `n` alone), so callers can compute this table once
    /// per job and reuse it across every arrival rate in a solve.
    ///
    /// # Errors
    ///
    /// Same domain errors as [`RelaxedLatency::latency`].
    pub fn knee_latencies(&self, k: f64, p: f64, max_servers: ReplicaCount) -> Result<Vec<f64>> {
        let k = percentile(k)?;
        let p = positive("p", p)?;
        if max_servers.is_zero() {
            return Err(Error::ZeroReplicas);
        }
        (1..=max_servers.get())
            .map(|n| {
                let lambda_knee = self.rho_max * f64::from(n) / p;
                mdc::latency_percentile(k, p, lambda_knee, ReplicaCount::new(n))
            })
            .collect()
    }

    /// Relaxed latency for every server count `1..=knees.len()` at one
    /// arrival rate: entry `n - 1` equals
    /// `self.latency(k, p, lambda, n)` bit-for-bit. `knees` must come
    /// from [`RelaxedLatency::knee_latencies`] with the same `k`/`p`.
    ///
    /// Below the knee the values come from one shared
    /// [`mdc::latency_percentile_sweep`] (a single Erlang recurrence
    /// pass); past the knee the precomputed knee latency is scaled by
    /// the queue growth rate, exactly as the direct path does.
    ///
    /// # Errors
    ///
    /// Same domain errors as [`RelaxedLatency::latency`].
    pub fn latency_sweep(&self, k: f64, p: f64, lambda: f64, knees: &[f64]) -> Result<Vec<f64>> {
        let _ = percentile(k)?;
        let _ = positive("p", p)?;
        let lambda = crate::error::non_negative("lambda", lambda)?;
        let max_servers = ReplicaCount::new(u32::try_from(knees.len()).unwrap_or(u32::MAX));
        if max_servers.is_zero() {
            return Err(Error::ZeroReplicas);
        }
        let below_knee = mdc::latency_percentile_sweep(k, p, lambda, max_servers)?;
        let mut out = Vec::with_capacity(knees.len());
        for n in 1..=max_servers.get() {
            let rho = lambda * p / f64::from(n);
            if rho <= self.rho_max {
                out.push(below_knee[(n - 1) as usize]);
            } else {
                let lambda_knee = self.rho_max * f64::from(n) / p;
                out.push(lambda / lambda_knee * knees[(n - 1) as usize]);
            }
        }
        Ok(out)
    }

    /// Relaxed latency with a *fractional* replica count, for use inside
    /// continuous optimization.
    ///
    /// The M/D/c closed form needs an integer server count; following the
    /// paper's continuous formulation we interpolate linearly between the
    /// estimates at `floor(x)` and `ceil(x)` (each already relaxed), which
    /// preserves monotonicity in `x` and keeps the function plateau-free.
    pub fn latency_fractional(&self, k: f64, p: f64, lambda: f64, x: f64) -> Result<f64> {
        if !x.is_finite() || x < 1.0 {
            return Err(Error::InvalidParameter {
                name: "x",
                value: x,
            });
        }
        let lo = x.floor();
        let hi = x.ceil();
        let l_lo = self.latency(k, p, lambda, ReplicaCount::new(lo as u32))?;
        if lo == hi {
            return Ok(l_lo);
        }
        let l_hi = self.latency(k, p, lambda, ReplicaCount::new(hi as u32))?;
        let frac = x - lo;
        Ok(l_lo + (l_hi - l_lo) * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc(n: u32) -> ReplicaCount {
        ReplicaCount::new(n)
    }

    #[test]
    fn matches_mdc_below_knee() {
        let est = RelaxedLatency::default();
        for lambda in [1.0, 10.0, 20.0] {
            let relaxed = est.latency(0.99, 0.15, lambda, rc(8)).unwrap();
            let exact = mdc::latency_percentile(0.99, 0.15, lambda, rc(8)).unwrap();
            assert_eq!(relaxed, exact);
        }
    }

    #[test]
    fn finite_and_increasing_past_knee() {
        let est = RelaxedLatency::default();
        let mut prev = 0.0;
        for i in 1..100 {
            let lambda = 5.0 * f64::from(i); // Goes far past saturation.
            let l = est.latency(0.99, 0.15, lambda, rc(4)).unwrap();
            assert!(l.is_finite(), "lambda={lambda}");
            assert!(l >= prev, "lambda={lambda}: {l} < {prev}");
            prev = l;
        }
    }

    #[test]
    fn no_plateau_strictly_increasing_when_overloaded() {
        let est = RelaxedLatency::default();
        let l1 = est.latency(0.99, 0.15, 100.0, rc(4)).unwrap();
        let l2 = est.latency(0.99, 0.15, 101.0, rc(4)).unwrap();
        assert!(l2 > l1, "overload region must have non-zero slope");
    }

    #[test]
    fn decreasing_in_replicas() {
        let est = RelaxedLatency::default();
        let mut prev = f64::INFINITY;
        for n in 1..64 {
            let l = est.latency(0.99, 0.15, 100.0, rc(n)).unwrap();
            assert!(l <= prev, "n={n}");
            prev = l;
        }
    }

    proptest::proptest! {
        /// The relaxed sweep (shared Erlang pass + knee scaling) must
        /// match per-server-count direct calls bit-for-bit.
        #[test]
        fn relaxed_sweep_matches_direct_calls_bitwise(
            lambda in 0.0f64..500.0,
            p in 0.01f64..0.5,
            k in 0.5f64..0.9999,
            max in 1u32..60,
        ) {
            let est = RelaxedLatency::default();
            let knees = est.knee_latencies(k, p, rc(max)).unwrap();
            let sweep = est.latency_sweep(k, p, lambda, &knees).unwrap();
            for n in 1..=max {
                let direct = est.latency(k, p, lambda, rc(n)).unwrap();
                let got = sweep[(n - 1) as usize];
                proptest::prop_assert_eq!(
                    got.to_bits(),
                    direct.to_bits(),
                    "n={} sweep={} direct={}",
                    n,
                    got,
                    direct
                );
            }
        }
    }

    #[test]
    fn fractional_interpolates() {
        let est = RelaxedLatency::default();
        let l4 = est.latency(0.99, 0.15, 30.0, rc(4)).unwrap();
        let l5 = est.latency(0.99, 0.15, 30.0, rc(5)).unwrap();
        let l45 = est.latency_fractional(0.99, 0.15, 30.0, 4.5).unwrap();
        assert!((l45 - 0.5 * (l4 + l5)).abs() < 1e-12);
        let l4f = est.latency_fractional(0.99, 0.15, 30.0, 4.0).unwrap();
        assert_eq!(l4f, l4);
    }

    #[test]
    fn fractional_monotone_in_x() {
        let est = RelaxedLatency::default();
        let mut prev = f64::INFINITY;
        let mut x = 1.0;
        while x < 16.0 {
            let l = est.latency_fractional(0.99, 0.15, 60.0, x).unwrap();
            assert!(l <= prev + 1e-12, "x={x}");
            prev = l;
            x += 0.25;
        }
    }

    #[test]
    fn knee_validation() {
        assert!(RelaxedLatency::new(0.0).is_err());
        assert!(RelaxedLatency::new(1.0).is_err());
        assert!(RelaxedLatency::new(f64::NAN).is_err());
        assert!(RelaxedLatency::new(0.5).is_ok());
        assert!(RelaxedLatency::default()
            .latency_fractional(0.99, 0.1, 1.0, 0.5)
            .is_err());
    }
}
