//! Erlang-B and Erlang-C formulas computed with numerically stable
//! recurrences.
//!
//! Both formulas take the *offered load* `a = lambda * p` (arrival rate
//! times mean service time, in Erlangs) and the number of servers `c`.

use crate::error::{non_negative, Error, Result};
use crate::ReplicaCount;

/// Computes the Erlang-B blocking probability `B(c, a)`.
///
/// Uses the standard recurrence `B(0) = 1`,
/// `B(k) = a * B(k-1) / (k + a * B(k-1))`, which is stable for large `c`
/// and `a` (no factorials are formed).
///
/// # Examples
///
/// ```
/// use faro_queueing::ReplicaCount;
/// let b = faro_queueing::erlang::erlang_b(ReplicaCount::new(2), 1.0).unwrap();
/// assert!((b - 0.2).abs() < 1e-12); // classical textbook value
/// ```
pub fn erlang_b(servers: ReplicaCount, offered_load: f64) -> Result<f64> {
    if servers.is_zero() {
        return Err(Error::ZeroReplicas);
    }
    let a = non_negative("offered_load", offered_load)?;
    let mut b = 1.0f64;
    for k in 1..=servers.get() {
        b = a * b / (f64::from(k) + a * b);
    }
    Ok(b)
}

/// Computes the Erlang-C probability that an arriving request must wait,
/// `C(c, a)`, for a stable queue (`a < c`).
///
/// Returns `1.0` when the queue is saturated (`a >= c`): every arrival
/// waits (and the wait diverges).
///
/// # Examples
///
/// ```
/// use faro_queueing::ReplicaCount;
/// // Single server: C(1, a) = rho.
/// let c = faro_queueing::erlang::erlang_c(ReplicaCount::ONE, 0.5).unwrap();
/// assert!((c - 0.5).abs() < 1e-12);
/// ```
pub fn erlang_c(servers: ReplicaCount, offered_load: f64) -> Result<f64> {
    if servers.is_zero() {
        return Err(Error::ZeroReplicas);
    }
    let a = non_negative("offered_load", offered_load)?;
    let c = servers.as_f64();
    if a >= c {
        return Ok(1.0);
    }
    let b = erlang_b(servers, a)?;
    let rho = a / c;
    Ok(b / (1.0 - rho * (1.0 - b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc(n: u32) -> ReplicaCount {
        ReplicaCount::new(n)
    }

    #[test]
    fn erlang_b_known_values() {
        // B(1, a) = a / (1 + a).
        for a in [0.1, 0.5, 1.0, 2.0, 10.0] {
            let b = erlang_b(rc(1), a).unwrap();
            assert!((b - a / (1.0 + a)).abs() < 1e-12, "a={a}");
        }
        // Zero load never blocks.
        assert_eq!(erlang_b(rc(4), 0.0).unwrap(), 0.0);
    }

    #[test]
    fn erlang_b_matches_direct_formula_small_c() {
        // Direct formula with factorials for small c.
        let direct = |c: u32, a: f64| -> f64 {
            let mut num = 1.0;
            let mut den = 0.0;
            let mut term = 1.0;
            for k in 0..=c {
                if k > 0 {
                    term *= a / k as f64;
                }
                den += term;
                if k == c {
                    num = term;
                }
            }
            num / den
        };
        for c in 1..=8u32 {
            for a in [0.3, 1.0, 3.0, 6.5] {
                let fast = erlang_b(rc(c), a).unwrap();
                let slow = direct(c, a);
                assert!((fast - slow).abs() < 1e-10, "c={c} a={a}");
            }
        }
    }

    #[test]
    fn erlang_c_known_single_server() {
        // C(1, rho) = rho for M/M/1.
        for rho in [0.1, 0.4, 0.9] {
            let c = erlang_c(rc(1), rho).unwrap();
            assert!((c - rho).abs() < 1e-12);
        }
    }

    #[test]
    fn erlang_c_saturated_is_one() {
        assert_eq!(erlang_c(rc(4), 4.0).unwrap(), 1.0);
        assert_eq!(erlang_c(rc(4), 10.0).unwrap(), 1.0);
    }

    #[test]
    fn erlang_c_bounded_and_monotone_in_load() {
        let mut prev = 0.0;
        for i in 1..100 {
            let a = 8.0 * f64::from(i) / 100.0;
            let c = erlang_c(rc(8), a).unwrap();
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev, "Erlang-C must be monotone in offered load");
            prev = c;
        }
    }

    #[test]
    fn rejects_zero_servers_and_bad_load() {
        assert!(erlang_b(ReplicaCount::ZERO, 1.0).is_err());
        assert!(erlang_c(ReplicaCount::ZERO, 1.0).is_err());
        assert!(erlang_c(rc(2), -1.0).is_err());
        assert!(erlang_c(rc(2), f64::NAN).is_err());
    }
}
