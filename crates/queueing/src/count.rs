//! The [`ReplicaCount`] newtype: a whole number of model replicas.
//!
//! Every latency estimator in this crate answers a question of the form
//! "what does the queue look like with `c` servers?". Passing `c` as a
//! bare `u32` invites positional mix-ups with the many other numeric
//! parameters (percentile, processing time, arrival rate) these
//! functions take; [`ReplicaCount`] makes the server-count argument a
//! distinct type, checked at compile time, and gives the conversion to
//! `f64` (the only arithmetic the estimators need) a single audited
//! home.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// A whole number of replicas (queueing servers / serving pods).
///
/// Ordered, hashable, and convertible to `f64` without loss (`u32`
/// always fits a double). Arithmetic is saturating at the type bounds —
/// a replica count can never wrap negative or overflow silently; use
/// [`ReplicaCount::checked_add`]/[`ReplicaCount::checked_sub`] when the
/// caller must observe the overflow instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaCount(u32);

impl ReplicaCount {
    /// No replicas.
    pub const ZERO: Self = Self(0);
    /// One replica (the floor every admission strategy enforces).
    pub const ONE: Self = Self(1);
    /// The largest representable count.
    pub const MAX: Self = Self(u32::MAX);

    /// Wraps a raw count.
    pub const fn new(count: u32) -> Self {
        Self(count)
    }

    /// The raw count.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Whether the count is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The count as an `f64` (exact: every `u32` is representable).
    pub fn as_f64(self) -> f64 {
        f64::from(self.0)
    }

    /// Checked addition.
    pub const fn checked_add(self, rhs: Self) -> Option<Self> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Self(v)),
            None => None,
        }
    }

    /// Checked subtraction.
    pub const fn checked_sub(self, rhs: Self) -> Option<Self> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Self(v)),
            None => None,
        }
    }

    /// Saturating subtraction (stops at zero).
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// The larger of two counts.
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// The smaller of two counts.
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl From<u32> for ReplicaCount {
    fn from(count: u32) -> Self {
        Self(count)
    }
}

impl From<ReplicaCount> for u32 {
    fn from(count: ReplicaCount) -> Self {
        count.0
    }
}

impl Add for ReplicaCount {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl AddAssign for ReplicaCount {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl AddAssign<u32> for ReplicaCount {
    fn add_assign(&mut self, rhs: u32) {
        *self = self.saturating_add(Self(rhs));
    }
}

impl Sub for ReplicaCount {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for ReplicaCount {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Sum for ReplicaCount {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ReplicaCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let c = ReplicaCount::new(7);
        assert_eq!(c.get(), 7);
        assert_eq!(c.as_f64(), 7.0);
        assert!(!c.is_zero());
        assert!(ReplicaCount::ZERO.is_zero());
        assert_eq!(ReplicaCount::ONE.get(), 1);
        assert_eq!(u32::from(c), 7);
        assert_eq!(ReplicaCount::from(3u32), ReplicaCount::new(3));
        assert_eq!(format!("{c}"), "7");
    }

    #[test]
    fn arithmetic_saturates_at_bounds() {
        let a = ReplicaCount::new(5);
        let b = ReplicaCount::new(3);
        assert_eq!(a + b, ReplicaCount::new(8));
        assert_eq!(a - b, ReplicaCount::new(2));
        assert_eq!(b - a, ReplicaCount::ZERO, "subtraction saturates at 0");
        assert_eq!(ReplicaCount::MAX + a, ReplicaCount::MAX);
        assert_eq!(a.checked_sub(b), Some(ReplicaCount::new(2)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(ReplicaCount::MAX.checked_add(ReplicaCount::ONE), None);
        let mut c = a;
        c += b;
        assert_eq!(c.get(), 8);
        c -= ReplicaCount::ONE;
        assert_eq!(c.get(), 7);
        c += 2u32;
        assert_eq!(c.get(), 9);
    }

    #[test]
    fn ordering_min_max_sum() {
        let a = ReplicaCount::new(2);
        let b = ReplicaCount::new(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: ReplicaCount = [a, b, ReplicaCount::ONE].into_iter().sum();
        assert_eq!(total.get(), 12);
    }

    #[test]
    fn f64_conversion_is_exact_at_extremes() {
        assert_eq!(ReplicaCount::MAX.as_f64(), u32::MAX as f64);
        assert_eq!(ReplicaCount::ZERO.as_f64(), 0.0);
    }
}
