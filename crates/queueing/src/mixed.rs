//! Latency estimation for a *mixed* replica pool: `n_c` replicas of
//! each hardware class `c`, where class `c` serves a request in
//! `p * m_c` seconds (`m_c` is the class's service-time multiplier).
//!
//! The pool is reduced to an *effective* homogeneous M/D/c queue via
//! capacity aggregation: with total head count `N = sum_c n_c` and
//! total service rate `R = sum_c n_c / (p * m_c)`, the effective
//! deterministic service time is `p_eff = N / R` — the harmonic
//! (capacity-weighted) mean of the per-class service times. The pool
//! is then scored as M/D/N with service time `p_eff`.
//!
//! This is exact for the total throughput of the pool and a standard
//! engineering approximation for its waiting-time distribution (a
//! least-loaded router keeps fast and slow replicas near-equally
//! utilized). Two properties the optimizer relies on:
//!
//! - **Single-class exactness**: a pool drawn from one class computes
//!   `p_eff = p * m_c` directly (no aggregation round-trip), so a
//!   class-0 pool with `m_0 = 1.0` is *bit-identical* to the
//!   homogeneous estimator (`p * 1.0 == p` in IEEE arithmetic).
//! - **Monotonicity in the mix**: replacing a slow replica with a fast
//!   one strictly increases `R`, so `p_eff` falls and the estimated
//!   latency never rises.

use crate::error::{self, Result};
use crate::mdc;
use crate::relaxed::RelaxedLatency;
use crate::ReplicaCount;

/// An effective homogeneous view of a mixed pool: total head count and
/// effective deterministic service time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectivePool {
    /// Total replicas across all classes.
    pub servers: ReplicaCount,
    /// Effective per-request service time (seconds).
    pub service_time: f64,
}

/// Reduces a mixed pool to its effective homogeneous view.
///
/// `multipliers[c]` is class `c`'s service-time multiplier; `counts[c]`
/// its replica count. Classes beyond `multipliers.len()` default to a
/// multiplier of 1.0 (reference speed).
///
/// # Errors
///
/// Rejects a non-positive base processing time or multiplier and an
/// all-zero pool.
pub fn effective_pool(p: f64, multipliers: &[f64], counts: &[u32]) -> Result<EffectivePool> {
    let p = error::positive("p", p)?;
    let m_of = |c: usize| multipliers.get(c).copied().unwrap_or(1.0);
    let mut total = 0u32;
    let mut first_nonzero = None;
    let mut mixed = false;
    for (c, &n) in counts.iter().enumerate() {
        error::positive("multiplier", m_of(c))?;
        if n > 0 {
            total += n;
            if first_nonzero.is_some() {
                mixed = true;
            } else {
                first_nonzero = Some(c);
            }
        }
    }
    let Some(single) = first_nonzero else {
        return Err(crate::Error::ZeroReplicas);
    };
    let service_time = if !mixed {
        // Single-class pools skip the aggregation round-trip so the
        // reference class stays bit-identical to the homogeneous path.
        p * m_of(single)
    } else {
        let mut rate = 0.0;
        for (c, &n) in counts.iter().enumerate() {
            if n > 0 {
                rate += f64::from(n) / (p * m_of(c));
            }
        }
        f64::from(total) / rate
    };
    Ok(EffectivePool {
        servers: ReplicaCount::new(total),
        service_time,
    })
}

/// The `k`-th percentile M/D/c latency of a mixed pool (the
/// [`mdc::latency_percentile`] of its [`effective_pool`]).
///
/// # Errors
///
/// Same domain errors as [`effective_pool`] and
/// [`mdc::latency_percentile`].
///
/// # Examples
///
/// ```
/// use faro_queueing::mixed;
/// // 2 reference replicas + 4 replicas that are 3x slower.
/// let l = mixed::latency_percentile(0.99, 0.150, 10.0, &[1.0, 3.0], &[2, 4]).unwrap();
/// // Faster than the all-slow pool, slower than the all-fast pool.
/// let slow = mixed::latency_percentile(0.99, 0.150, 10.0, &[1.0, 3.0], &[0, 6]).unwrap();
/// let fast = mixed::latency_percentile(0.99, 0.150, 10.0, &[1.0, 3.0], &[6, 0]).unwrap();
/// assert!(fast <= l && l <= slow);
/// ```
pub fn latency_percentile(
    k: f64,
    p: f64,
    lambda: f64,
    multipliers: &[f64],
    counts: &[u32],
) -> Result<f64> {
    let pool = effective_pool(p, multipliers, counts)?;
    mdc::latency_percentile(k, pool.service_time, lambda, pool.servers)
}

/// The relaxed (plateau-free) latency of a mixed pool: the
/// [`RelaxedLatency`] estimator applied to the [`effective_pool`].
///
/// # Errors
///
/// Same domain errors as [`effective_pool`] and
/// [`RelaxedLatency::latency`].
pub fn relaxed_latency(
    est: &RelaxedLatency,
    k: f64,
    p: f64,
    lambda: f64,
    multipliers: &[f64],
    counts: &[u32],
) -> Result<f64> {
    let pool = effective_pool(p, multipliers, counts)?;
    est.latency(k, pool.service_time, lambda, pool.servers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_reference_class_is_bit_identical_to_homogeneous() {
        for n in [1u32, 3, 8, 17] {
            for lambda in [0.0, 4.0, 25.0, 80.0] {
                let direct =
                    mdc::latency_percentile(0.99, 0.150, lambda, ReplicaCount::new(n)).unwrap();
                let via_pool =
                    latency_percentile(0.99, 0.150, lambda, &[1.0, 3.0], &[n, 0]).unwrap();
                assert!(
                    direct == via_pool || (direct.is_infinite() && via_pool.is_infinite()),
                    "n={n} lambda={lambda}: {direct} != {via_pool}"
                );
            }
        }
    }

    #[test]
    fn single_slow_class_scales_the_service_time() {
        let pool = effective_pool(0.150, &[1.0, 3.0], &[0, 5]).unwrap();
        assert_eq!(pool.servers, ReplicaCount::new(5));
        assert!((pool.service_time - 0.450).abs() < 1e-15);
    }

    #[test]
    fn mixed_pool_is_the_harmonic_mean() {
        // 2 fast (p) + 2 slow (2p): R = 2/p + 2/(2p) = 3/p,
        // p_eff = 4 / (3/p) = 4p/3.
        let pool = effective_pool(0.3, &[1.0, 2.0], &[2, 2]).unwrap();
        assert_eq!(pool.servers, ReplicaCount::new(4));
        assert!((pool.service_time - 0.4).abs() < 1e-12);
    }

    #[test]
    fn swapping_slow_for_fast_never_hurts() {
        let mut last = f64::INFINITY;
        for fast in 0..=6u32 {
            let l = latency_percentile(0.99, 0.2, 8.0, &[1.0, 4.0], &[fast, 6 - fast]).unwrap();
            assert!(
                l <= last + 1e-12,
                "fast={fast}: latency {l} rose above {last}"
            );
            last = l;
        }
    }

    #[test]
    fn rejects_empty_and_invalid_pools() {
        assert!(effective_pool(0.1, &[1.0], &[0, 0]).is_err());
        assert!(effective_pool(0.1, &[1.0], &[]).is_err());
        assert!(effective_pool(-0.1, &[1.0], &[1]).is_err());
        assert!(effective_pool(0.1, &[0.0], &[1]).is_err());
        // A class past the multiplier table defaults to reference speed.
        let pool = effective_pool(0.1, &[], &[3]).unwrap();
        assert!((pool.service_time - 0.1).abs() < 1e-15);
    }
}
