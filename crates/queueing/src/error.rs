//! Error type for queueing estimators.

use core::fmt;

/// Result alias for this crate.
pub type Result<T> = core::result::Result<T, Error>;

/// Errors returned by the latency estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A percentile was outside the open interval `(0, 1)`.
    InvalidPercentile(f64),
    /// A rate, processing time, or load parameter was non-finite or
    /// non-positive where positivity is required.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A replica count of zero was supplied.
    ZeroReplicas,
    /// No replica count up to the provided maximum satisfies the SLO.
    Infeasible {
        /// The maximum replica count that was probed.
        max_replicas: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidPercentile(p) => {
                write!(f, "percentile {p} must lie strictly between 0 and 1")
            }
            Error::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` has invalid value {value}")
            }
            Error::ZeroReplicas => write!(f, "replica count must be at least 1"),
            Error::Infeasible { max_replicas } => {
                write!(f, "no replica count up to {max_replicas} meets the SLO")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn positive(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(Error::InvalidParameter { name, value })
    }
}

/// Validates that `value` is finite and non-negative.
pub(crate) fn non_negative(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(Error::InvalidParameter { name, value })
    }
}

/// Validates that a percentile lies strictly inside `(0, 1)`.
pub(crate) fn percentile(k: f64) -> Result<f64> {
    if k.is_finite() && k > 0.0 && k < 1.0 {
        Ok(k)
    } else {
        Err(Error::InvalidPercentile(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_values() {
        let e = Error::InvalidPercentile(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = Error::InvalidParameter {
            name: "lambda",
            value: -1.0,
        };
        assert!(e.to_string().contains("lambda"));
        assert!(Error::ZeroReplicas.to_string().contains("replica"));
        assert!(Error::Infeasible { max_replicas: 8 }
            .to_string()
            .contains('8'));
    }

    #[test]
    fn validators_accept_and_reject() {
        assert!(positive("x", 1.0).is_ok());
        assert!(positive("x", 0.0).is_err());
        assert!(positive("x", f64::NAN).is_err());
        assert!(non_negative("x", 0.0).is_ok());
        assert!(non_negative("x", -0.1).is_err());
        assert!(percentile(0.99).is_ok());
        assert!(percentile(0.0).is_err());
        assert!(percentile(1.0).is_err());
    }
}
