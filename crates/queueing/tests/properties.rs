//! Property-based tests for the queueing estimators.

use faro_queueing::{erlang, mdc, mixed, mmc, upper_bound, RelaxedLatency, ReplicaCount};
use proptest::prelude::*;

fn rc(n: u32) -> ReplicaCount {
    ReplicaCount::new(n)
}

proptest! {
    /// Erlang-C is a probability and dominates Erlang-B.
    #[test]
    fn erlang_c_is_probability(servers in 1u32..64, load in 0.0f64..100.0) {
        let c = erlang::erlang_c(rc(servers), load).unwrap();
        prop_assert!((0.0..=1.0).contains(&c));
        let b = erlang::erlang_b(rc(servers), load).unwrap();
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!(c >= b - 1e-12, "C({servers},{load})={c} < B={b}");
    }

    /// Waiting percentiles are non-negative and monotone in k.
    #[test]
    fn wait_percentile_monotone(
        servers in 1u32..32,
        lambda in 0.0f64..100.0,
        p in 0.01f64..1.0,
        k1 in 0.01f64..0.98,
        dk in 0.001f64..0.01,
    ) {
        let k2 = k1 + dk;
        let w1 = mmc::wait_percentile(k1, p, lambda, rc(servers)).unwrap();
        let w2 = mmc::wait_percentile(k2, p, lambda, rc(servers)).unwrap();
        prop_assert!(w1 >= 0.0);
        prop_assert!(w2 >= w1 || (w1.is_infinite() && w2.is_infinite()));
    }

    /// The M/D/c approximation never exceeds the M/M/c value.
    #[test]
    fn mdc_below_mmc(
        servers in 1u32..32,
        lambda in 0.1f64..50.0,
        p in 0.01f64..0.5,
        k in 0.5f64..0.999,
    ) {
        let mdc_w = mdc::wait_percentile(k, p, lambda, rc(servers)).unwrap();
        let mmc_w = mmc::wait_percentile(k, p, lambda, rc(servers)).unwrap();
        if mmc_w.is_finite() {
            prop_assert!(mdc_w <= mmc_w + 1e-12);
        }
    }

    /// The relaxed estimator is always finite, at least the service time,
    /// and never below the exact estimate where the exact one is finite
    /// and the queue is below the knee.
    #[test]
    fn relaxed_finite_and_bounded(
        servers in 1u32..32,
        lambda in 0.0f64..500.0,
        p in 0.01f64..0.5,
    ) {
        let est = RelaxedLatency::default();
        let l = est.latency(0.99, p, lambda, rc(servers)).unwrap();
        prop_assert!(l.is_finite());
        prop_assert!(l >= p - 1e-12);
    }

    /// Fractional latency is sandwiched by its integer neighbours.
    #[test]
    fn fractional_sandwich(
        x_times_4 in 4u32..128,
        lambda in 0.0f64..200.0,
        p in 0.01f64..0.5,
    ) {
        let x = f64::from(x_times_4) / 4.0;
        let est = RelaxedLatency::default();
        let l = est.latency_fractional(0.99, p, lambda, x).unwrap();
        let lo = est.latency(0.99, p, lambda, rc(x.floor() as u32)).unwrap();
        let hi = est.latency(0.99, p, lambda, rc(x.ceil() as u32)).unwrap();
        prop_assert!(l <= lo + 1e-9 && l >= hi - 1e-9, "x={x} l={l} lo={lo} hi={hi}");
    }

    /// The upper-bound replica estimate always meets the SLO.
    #[test]
    fn upper_bound_meets_slo(
        p in 0.01f64..0.5,
        kappa in 0.0f64..2000.0,
        slo in 0.05f64..2.0,
    ) {
        let n = upper_bound::replicas_for_slo(p, kappa, slo).unwrap();
        prop_assert!(n >= ReplicaCount::ONE);
        let t = upper_bound::completion_time(p, kappa, n).unwrap();
        prop_assert!(t <= slo + 1e-9);
    }

    /// A single-class mixed pool is *bit-identical* to the homogeneous
    /// M/D/c estimator: the reference class (multiplier 1.0) must not
    /// perturb a single committed byte, and any lone class `c` must
    /// equal the homogeneous estimate at `p * m_c` exactly — no
    /// aggregation round-trip allowed.
    #[test]
    fn single_class_mixed_pool_is_bit_identical(
        servers in 1u32..32,
        lambda in 0.1f64..50.0,
        p in 0.01f64..0.5,
        m in 0.5f64..8.0,
        class in 0usize..3,
        k in 0.5f64..0.999,
    ) {
        let mut multipliers = [1.0f64; 3];
        multipliers[class] = m;
        let mut counts = [0u32; 3];
        counts[class] = servers;
        let mixed = mixed::latency_percentile(k, p, lambda, &multipliers, &counts);
        let homo = mdc::latency_percentile(k, p * m, lambda, rc(servers));
        match (mixed, homo) {
            (Ok(a), Ok(b)) => prop_assert!(
                a.to_bits() == b.to_bits(),
                "single-class mix diverged: {a} vs {b}"
            ),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "domain mismatch: {a:?} vs {b:?}"),
        }
    }

    /// Swapping a slow replica for a fast one never raises the mixed
    /// pool's estimated latency (the monotonicity the class-aware
    /// solver's shrink step relies on).
    #[test]
    fn mixed_pool_monotone_in_the_mix(
        fast in 0u32..8,
        slow in 1u32..8,
        lambda in 0.1f64..20.0,
        p in 0.01f64..0.3,
        m in 1.0f64..6.0,
    ) {
        let before = mixed::latency_percentile(0.99, p, lambda, &[1.0, m], &[fast, slow]);
        let after = mixed::latency_percentile(0.99, p, lambda, &[1.0, m], &[fast + 1, slow - 1]);
        if let (Ok(b), Ok(a)) = (before, after) {
            prop_assert!(a <= b + 1e-9, "faster mix got slower: {b} -> {a}");
        }
    }

    /// `replicas_for_slo` returns a feasible, minimal count when it
    /// succeeds.
    #[test]
    fn mdc_replicas_feasible(
        p in 0.05f64..0.3,
        lambda in 0.1f64..100.0,
        slo_mult in 2.0f64..10.0,
    ) {
        let slo = p * slo_mult;
        if let Ok(n) = mdc::replicas_for_slo(0.99, p, lambda, slo, rc(256)) {
            let l = mdc::latency_percentile(0.99, p, lambda, n).unwrap();
            prop_assert!(l <= slo);
            if n > ReplicaCount::ONE {
                let l_prev =
                    mdc::latency_percentile(0.99, p, lambda, n - ReplicaCount::ONE).unwrap();
                prop_assert!(l_prev > slo);
            }
        }
    }
}
