//! End-to-end loopback integration: real TCP server, real HTTP
//! client, the resilient driver steering through seeded server-side
//! chaos, and externally injected drift that must be detected and
//! healed.
//!
//! The chaos seed comes from `FARO_CHAOS_SEED` (default 1) so CI can
//! run a seed matrix; for any fixed seed the run is deterministic —
//! one server thread serves requests in order and every fault draw
//! comes from the seeded per-class streams. `FARO_LIVE_TIME_GATE_SECS`
//! (default 60) bounds the whole test's wall time: the live loop must
//! actually run at wall speed, not hang on a socket.

use faro_cluster::http::post;
use faro_cluster::wire::{APPLY_PATH, OBSERVE_PATH};
use faro_cluster::{
    ChaosConfig, ClusterConfig, ClusterServer, HttpBackend, LiveConfig, ObserveResponse,
};
use faro_control::{Clock, Reconciler, ResilienceConfig, ResilientDriver};
use faro_core::admission::ClampToQuota;
use faro_core::baselines::Aiad;
use faro_telemetry::{TelemetryEvent, TraceSink};
use std::time::{Duration, Instant};

fn chaos_seed() -> u64 {
    std::env::var("FARO_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn time_gate() -> Duration {
    let secs = std::env::var("FARO_LIVE_TIME_GATE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60.0);
    Duration::from_secs_f64(secs)
}

fn live_config(rounds: u64) -> LiveConfig {
    LiveConfig {
        tick_ms: 10_000,
        interval: Duration::from_millis(2),
        horizon_rounds: rounds,
        request_timeout: Duration::from_secs(5),
    }
}

/// The drift-and-heal scenario from the issue: run the resilient
/// driver against the live server under seeded chaos, scale a job
/// behind the controller's back mid-run, and require that the drift
/// is detected, repaired, and the final observed state matches the
/// controller's last decision.
#[test]
fn loopback_driver_heals_injected_drift_under_chaos() {
    let started = Instant::now();
    let seed = chaos_seed();
    let chaos = ChaosConfig {
        seed,
        api_latency_ms: 0,
        apply_fail_per_mille: 150,
        stale_observe_per_mille: 100,
        stale_age_ms: 10_000,
    };
    let server =
        ClusterServer::spawn_with_chaos(ClusterConfig::demo(40), chaos).expect("spawn server");
    let addr = server.addr();

    let backend = HttpBackend::connect(addr, live_config(24));
    let mut reconciler = Reconciler::new(Box::new(Aiad::default()), Box::new(ClampToQuota));
    let mut driver = ResilientDriver::new(backend, ResilienceConfig::default());
    let mut sink = TraceSink::new();

    let rogue = "{\"v\":1,\"desired\":[{\"job\":0,\"target_replicas\":15,\"drop_rate\":0.0}]}";
    let mut round = 0u64;
    while driver.backend_mut().advance_with(&mut sink).is_some() {
        round += 1;
        if round == 8 {
            // A rogue actor re-scales job 0 through the same public
            // API, behind the controller's back. Retry until it gets
            // past the injected apply failures — the rogue is not
            // subject to the driver's retry budget.
            let mut attempts = 0;
            loop {
                attempts += 1;
                let resp =
                    post(addr, APPLY_PATH, rogue, Duration::from_secs(5)).expect("rogue apply");
                if resp.status == 200 {
                    break;
                }
                assert!(attempts < 100, "rogue apply never got through");
            }
        }
        driver.round_with(&mut reconciler, &mut sink);
    }

    let stats = *driver.stats();
    assert_eq!(stats.rounds, 24, "every advance produced a round");
    assert!(
        stats.drift_repairs >= 1,
        "the rogue apply must surface as drift: {stats:?}"
    );
    let drift_events = sink
        .entries()
        .filter(|e| matches!(e.event, TelemetryEvent::DriftDetected { .. }))
        .count();
    assert!(drift_events >= 1, "drift must be reported to telemetry");

    // The controller's last decision is the intended state; the
    // server's live state must have converged back to it.
    let last_granted: Vec<u32> = sink
        .entries()
        .filter_map(|e| match &e.event {
            TelemetryEvent::Decision { record } => Some(
                record
                    .jobs
                    .iter()
                    .map(|j| j.granted_replicas)
                    .collect::<Vec<_>>(),
            ),
            _ => None,
        })
        .last()
        .expect("at least one decision was recorded");
    let obs = post(addr, OBSERVE_PATH, "{}", Duration::from_secs(5)).expect("final observe");
    assert_eq!(obs.status, 200);
    let parsed = ObserveResponse::from_json(&serde_json::from_str(&obs.body).expect("json"))
        .expect("v1 body");
    let observed: Vec<u32> = parsed
        .snapshot
        .jobs
        .iter()
        .map(|j| j.target_replicas)
        .collect();
    assert_eq!(
        observed, last_granted,
        "final observed targets must equal the controller's last decision"
    );

    server.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < time_gate(),
        "live loop blew the wall-time gate: {elapsed:?}"
    );
}

/// Same seed, same trace: the loopback loop replays deterministically
/// because every fault draw is seeded and requests are served in
/// order by one thread.
#[test]
fn loopback_round_accounting_replays_per_seed() {
    let run = || {
        let chaos = ChaosConfig {
            seed: chaos_seed(),
            api_latency_ms: 0,
            apply_fail_per_mille: 200,
            stale_observe_per_mille: 150,
            stale_age_ms: 10_000,
        };
        let server =
            ClusterServer::spawn_with_chaos(ClusterConfig::demo(30), chaos).expect("spawn server");
        let backend = HttpBackend::connect(server.addr(), live_config(16));
        let mut reconciler = Reconciler::new(Box::new(Aiad::default()), Box::new(ClampToQuota));
        let mut driver = ResilientDriver::new(backend, ResilienceConfig::default());
        let mut sink = faro_telemetry::NoopSink;
        while driver.backend_mut().advance_with(&mut sink).is_some() {
            driver.round_with(&mut reconciler, &mut sink);
        }
        let stats = *driver.stats();
        server.shutdown();
        stats
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same driver accounting");
    assert_eq!(a.rounds, 16);
}

/// The plain (non-resilient) path also works end to end when chaos is
/// off: a bare reconciler over the HTTP backend completes its horizon
/// and scales the surge job up.
#[test]
fn plain_reconciler_runs_clean_over_http() {
    let server = ClusterServer::spawn(ClusterConfig::demo(30)).expect("spawn server");
    let mut backend = HttpBackend::connect(server.addr(), live_config(20));
    let mut reconciler = Reconciler::new(Box::new(Aiad::default()), Box::new(ClampToQuota));
    while backend.advance().is_some() {
        reconciler
            .reconcile_with(&mut backend, &mut faro_telemetry::NoopSink)
            .expect("clean backend never fails");
    }
    assert_eq!(reconciler.stats().rounds, 20);
    assert!(
        !backend.apply_latencies_ms().is_empty(),
        "apply latency samples were recorded"
    );
    server.shutdown();
}
