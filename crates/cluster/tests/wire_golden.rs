//! Golden byte tests for the v1 actuation wire schema.
//!
//! The bytes pinned here are the protocol: a server upgrade that
//! changes any of them breaks clients that committed to v1, so these
//! literals only ever change together with a `WIRE_VERSION` bump.
//! Alongside the exact bytes, every envelope must survive a
//! serialize → parse → re-serialize round trip byte-identically, and
//! the `"snapshot"` / `"desired"` bodies must be byte-compatible with
//! the core serializers the rest of the workspace commits to disk.

use faro_cluster::{ApplyRequest, ApplyResponse, ChaosConfig, ErrorBody, ObserveResponse};
use faro_core::types::{
    ClassAlloc, ClusterSnapshot, DesiredState, JobDecision, JobId, JobObservation, JobSpec,
    ResourceModel,
};
use faro_core::units::{RatePerMin, ReplicaCount, SimTimeMs};
use std::sync::Arc;

/// Serializes through the workspace writer, panicking on failure.
fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serializes")
}

/// A small fixed snapshot: one homogeneous job, two history samples.
fn snapshot() -> ClusterSnapshot {
    ClusterSnapshot {
        now: SimTimeMs::from_millis(10_000),
        resources: ResourceModel::replicas(ReplicaCount::new(16)),
        jobs: vec![JobObservation {
            spec: Arc::new(JobSpec::resnet18("a")),
            target_replicas: 2,
            ready_replicas: 2,
            queue_len: 0,
            arrival_rate_history: Arc::new(vec![RatePerMin::new(300.0), RatePerMin::new(420.0)]),
            recent_arrival_rate: 5.0,
            mean_processing_time: 0.1,
            recent_tail_latency: 0.2,
            drop_rate: 0.0,
            class_target: None,
            class_ready: None,
        }],
    }
}

/// A fixed desired state: one classless decision, one classed one.
fn desired() -> DesiredState {
    let mut d = DesiredState::new();
    d.set(JobId::new(0), JobDecision::replicas(5));
    d.set(
        JobId::new(1),
        JobDecision::classed(ClassAlloc::from_counts(&[2, 1]).expect("alloc")).with_drop_rate(0.25),
    );
    d
}

const OBSERVE_GOLDEN: &str = "{\"v\":1,\"seq\":3,\"age_ms\":10000,\"snapshot\":{\"now\":10,\
    \"resources\":{\"cpu_per_replica\":1,\"mem_per_replica\":1,\"cluster_cpu\":16,\"cluster_mem\":16},\
    \"jobs\":[{\"spec\":{\"name\":\"a\",\"slo\":{\"latency\":0.4,\"percentile\":0.99},\
    \"priority\":1,\"processing_time\":0.1},\"target_replicas\":2,\"ready_replicas\":2,\
    \"queue_len\":0,\"arrival_rate_history\":[300,420],\"recent_arrival_rate\":5,\
    \"mean_processing_time\":0.1,\"recent_tail_latency\":0.2,\"drop_rate\":0}]}}";

const APPLY_REQ_GOLDEN: &str = "{\"v\":1,\"desired\":[\
    {\"job\":0,\"target_replicas\":5,\"drop_rate\":0},\
    {\"job\":1,\"target_replicas\":3,\"drop_rate\":0.25,\"classes\":[2,1]}]}";

const APPLY_RESP_GOLDEN: &str = "{\"v\":1,\"applied\":2,\"failed\":0,\"replicas_started\":4}";

const CHAOS_GOLDEN: &str = "{\"v\":1,\"seed\":42,\"api_latency_ms\":3,\
    \"apply_fail_per_mille\":150,\"stale_observe_per_mille\":200,\"stale_age_ms\":30000}";

const ERROR_GOLDEN: &str =
    "{\"v\":1,\"error\":\"injected apply unavailability\",\"retryable\":true}";

fn chaos() -> ChaosConfig {
    ChaosConfig {
        seed: 42,
        api_latency_ms: 3,
        apply_fail_per_mille: 150,
        stale_observe_per_mille: 200,
        stale_age_ms: 30_000,
    }
}

#[test]
fn v1_envelopes_serialize_to_the_golden_bytes() {
    let observe = ObserveResponse {
        seq: 3,
        age_ms: 10_000,
        snapshot: snapshot(),
    };
    assert_eq!(json(&observe), OBSERVE_GOLDEN);

    let apply = ApplyRequest { desired: desired() };
    assert_eq!(json(&apply), APPLY_REQ_GOLDEN);

    let resp = ApplyResponse {
        applied: 2,
        failed: 0,
        replicas_started: 4,
    };
    assert_eq!(json(&resp), APPLY_RESP_GOLDEN);

    assert_eq!(json(&chaos()), CHAOS_GOLDEN);

    let err = ErrorBody {
        error: "injected apply unavailability".to_owned(),
        retryable: true,
    };
    assert_eq!(json(&err), ERROR_GOLDEN);
}

#[test]
fn golden_bytes_parse_and_reserialize_identically() {
    let v = serde_json::from_str(OBSERVE_GOLDEN).expect("observe golden is JSON");
    let observe = ObserveResponse::from_json(&v).expect("observe golden parses");
    assert_eq!(json(&observe), OBSERVE_GOLDEN);

    let v = serde_json::from_str(APPLY_REQ_GOLDEN).expect("apply-req golden is JSON");
    let apply = ApplyRequest::from_json(&v).expect("apply-req golden parses");
    assert_eq!(json(&apply), APPLY_REQ_GOLDEN);

    let v = serde_json::from_str(APPLY_RESP_GOLDEN).expect("apply-resp golden is JSON");
    let resp = ApplyResponse::from_json(&v).expect("apply-resp golden parses");
    assert_eq!(json(&resp), APPLY_RESP_GOLDEN);

    let v = serde_json::from_str(CHAOS_GOLDEN).expect("chaos golden is JSON");
    let plan = ChaosConfig::from_json(&v).expect("chaos golden parses");
    assert_eq!(json(&plan), CHAOS_GOLDEN);

    let v = serde_json::from_str(ERROR_GOLDEN).expect("error golden is JSON");
    let err = ErrorBody::from_json(&v).expect("error golden parses");
    assert_eq!(json(&err), ERROR_GOLDEN);
}

/// The envelope bodies are the core serializers, byte for byte: the
/// `"snapshot"` field is exactly what `ClusterSnapshot` writes, the
/// `"desired"` field exactly what `DesiredState` writes. A consumer
/// that already parses the committed sim artifacts parses the wire.
#[test]
fn envelope_bodies_reuse_the_core_serializers_byte_for_byte() {
    let observe = ObserveResponse {
        seq: 3,
        age_ms: 10_000,
        snapshot: snapshot(),
    };
    let expected = format!(
        "{{\"v\":1,\"seq\":3,\"age_ms\":10000,\"snapshot\":{}}}",
        json(&snapshot())
    );
    assert_eq!(json(&observe), expected);

    let apply = ApplyRequest { desired: desired() };
    let expected = format!("{{\"v\":1,\"desired\":{}}}", json(&desired()));
    assert_eq!(json(&apply), expected);
}

/// Untagged (pre-versioning) payloads are valid v1: a legacy client
/// that never sends `"v"` keeps working against a v1 server.
#[test]
fn legacy_untagged_payloads_are_accepted() {
    let legacy = "{\"desired\":[{\"job\":0,\"target_replicas\":5,\"drop_rate\":0}]}";
    let v = serde_json::from_str(legacy).expect("legacy body is JSON");
    let apply = ApplyRequest::from_json(&v).expect("untagged body accepted as v1");
    assert_eq!(
        apply.desired.get(JobId::new(0)),
        Some(JobDecision::replicas(5))
    );
    // Re-serializing a legacy payload upgrades it to the tagged form.
    assert!(json(&apply).starts_with("{\"v\":1,"));

    let legacy_observe = OBSERVE_GOLDEN.replacen("{\"v\":1,", "{", 1);
    let v = serde_json::from_str(&legacy_observe).expect("JSON");
    let observe = ObserveResponse::from_json(&v).expect("untagged observe accepted");
    assert_eq!(json(&observe), OBSERVE_GOLDEN);
}

/// Future versions are refused by every envelope parser, not silently
/// misread.
#[test]
fn future_versions_are_rejected_by_every_parser() {
    for golden in [
        OBSERVE_GOLDEN,
        APPLY_REQ_GOLDEN,
        APPLY_RESP_GOLDEN,
        CHAOS_GOLDEN,
        ERROR_GOLDEN,
    ] {
        let v2 = golden.replacen("{\"v\":1,", "{\"v\":2,", 1);
        let v = serde_json::from_str(&v2).expect("JSON");
        assert!(
            ObserveResponse::from_json(&v).is_none()
                && ApplyRequest::from_json(&v).is_none()
                && ApplyResponse::from_json(&v).is_none()
                && ChaosConfig::from_json(&v).is_none()
                && ErrorBody::from_json(&v).is_none(),
            "a v2 envelope must parse as nothing: {v2}"
        );
    }
}

/// Decision bodies inside the committed telemetry trace stay readable
/// through the wire parsers: every `Decision` record's per-job grants
/// can be rebuilt into a `DesiredState` and shipped as a v1 apply.
#[test]
fn committed_trace_decisions_convert_to_v1_apply_bodies() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/faro_trace.jsonl"
    );
    let trace = std::fs::read_to_string(path).expect("committed trace exists");
    let mut decisions = 0usize;
    for line in trace.lines().filter(|l| !l.trim().is_empty()) {
        let v: serde_json::Value = serde_json::from_str(line).expect("trace line is JSON");
        let Some(record) = v
            .get("event")
            .and_then(|e| e.get("Decision"))
            .and_then(|d| d.get("record"))
        else {
            continue;
        };
        let jobs = record.get("jobs").and_then(|j| j.as_array()).expect("jobs");
        let mut desired = DesiredState::new();
        for (idx, job) in jobs.iter().enumerate() {
            let granted = job
                .get("granted_replicas")
                .and_then(|g| g.as_u64())
                .expect("granted_replicas");
            desired.set(JobId::new(idx), JobDecision::replicas(granted as u32));
        }
        let req = ApplyRequest { desired };
        let json = json(&req);
        let back = ApplyRequest::from_json(&serde_json::from_str(&json).expect("JSON"))
            .expect("round-trips");
        assert_eq!(back, req);
        decisions += 1;
    }
    assert!(
        decisions > 50,
        "trace unexpectedly thin: {decisions} decisions"
    );
}
