//! The versioned v1 actuation wire schema.
//!
//! Every payload is a JSON envelope carrying a `"v"` version tag next
//! to the body. The body shapes reuse the exact serializers the rest
//! of the workspace already commits to disk: `"snapshot"` is
//! [`ClusterSnapshot`]'s wire format byte-for-byte, `"desired"` is
//! [`DesiredState`]'s. That makes the protocol testable against the
//! committed sim goldens — a trace line's decision record and an
//! apply request body agree on every shared field — and keeps one
//! serializer per type.
//!
//! Compatibility rule: a payload *without* a `"v"` tag is accepted as
//! v1 (the tag was introduced together with the protocol, so legacy
//! bodies are exactly the untagged ones). A payload with an unknown
//! newer tag is rejected by [`check_version`].

use faro_core::types::{ClusterSnapshot, DesiredState};
use serde_json::Value;

/// The current protocol version.
pub const WIRE_VERSION: u64 = 1;

/// Observe endpoint path.
pub const OBSERVE_PATH: &str = "/v1/observe";
/// Apply endpoint path.
pub const APPLY_PATH: &str = "/v1/apply";
/// Chaos-injection endpoint path.
pub const CHAOS_PATH: &str = "/v1/chaos";

/// Reads the envelope's version tag: absent means v1 (legacy), any
/// other value must equal [`WIRE_VERSION`].
pub fn check_version(v: &Value) -> Option<u64> {
    match v.get("v") {
        None => Some(WIRE_VERSION),
        Some(tag) => {
            let tag = tag.as_u64()?;
            (tag == WIRE_VERSION).then_some(tag)
        }
    }
}

/// `/v1/observe` success body.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveResponse {
    /// Monotone snapshot sequence number (one per fresh observation;
    /// a chaos-served stale snapshot repeats the cached `seq`).
    pub seq: u64,
    /// How far behind the server's current state this snapshot is, in
    /// milliseconds of the *logical* timeline. Zero for a fresh
    /// snapshot; positive when the server replayed a cache. The
    /// client subtracts it from its own clock so the resilient
    /// driver's staleness window applies across the process boundary.
    pub age_ms: u64,
    /// The snapshot, in the workspace's committed wire format.
    pub snapshot: ClusterSnapshot,
}

impl serde::Serialize for ObserveResponse {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"v\":");
        WIRE_VERSION.serialize_json(out);
        out.push_str(",\"seq\":");
        self.seq.serialize_json(out);
        out.push_str(",\"age_ms\":");
        self.age_ms.serialize_json(out);
        out.push_str(",\"snapshot\":");
        self.snapshot.serialize_json(out);
        out.push('}');
    }
}

impl ObserveResponse {
    /// Parses the envelope; `None` on a shape or version mismatch.
    pub fn from_json(v: &Value) -> Option<Self> {
        check_version(v)?;
        Some(Self {
            seq: v.get("seq")?.as_u64()?,
            age_ms: v.get("age_ms")?.as_u64()?,
            snapshot: ClusterSnapshot::from_json(v.get("snapshot")?)?,
        })
    }
}

/// `/v1/apply` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplyRequest {
    /// The desired state to actuate, in the workspace's committed
    /// wire format (`[{"job":N,"target_replicas":..,..}, ...]`).
    pub desired: DesiredState,
}

impl serde::Serialize for ApplyRequest {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"v\":");
        WIRE_VERSION.serialize_json(out);
        out.push_str(",\"desired\":");
        self.desired.serialize_json(out);
        out.push('}');
    }
}

impl ApplyRequest {
    /// Parses the envelope; `None` on a shape or version mismatch.
    pub fn from_json(v: &Value) -> Option<Self> {
        check_version(v)?;
        Some(Self {
            desired: DesiredState::from_json(v.get("desired")?)?,
        })
    }
}

/// `/v1/apply` success body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyResponse {
    /// Jobs whose decision was applied.
    pub applied: u32,
    /// Jobs whose decision was rejected (unknown job index).
    pub failed: u32,
    /// Replicas that entered cold start because of this apply.
    pub replicas_started: u32,
}

impl serde::Serialize for ApplyResponse {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"v\":");
        WIRE_VERSION.serialize_json(out);
        out.push_str(",\"applied\":");
        self.applied.serialize_json(out);
        out.push_str(",\"failed\":");
        self.failed.serialize_json(out);
        out.push_str(",\"replicas_started\":");
        self.replicas_started.serialize_json(out);
        out.push('}');
    }
}

impl ApplyResponse {
    /// Parses the envelope; `None` on a shape or version mismatch.
    pub fn from_json(v: &Value) -> Option<Self> {
        check_version(v)?;
        Some(Self {
            applied: v.get("applied")?.as_u64()? as u32,
            failed: v.get("failed")?.as_u64()? as u32,
            replicas_started: v.get("replicas_started")?.as_u64()? as u32,
        })
    }
}

/// `/v1/chaos` request body: the server's fault-injection knobs.
///
/// All rates are per-mille (0–1000) so the wire carries integers and
/// two runs with the same seed draw identically. [`ChaosConfig::none`]
/// disables every class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for the server's fault streams.
    pub seed: u64,
    /// Artificial latency added to every API reply, wall milliseconds.
    pub api_latency_ms: u64,
    /// Per-mille of `apply` calls refused with a retryable 503 before
    /// touching cluster state.
    pub apply_fail_per_mille: u32,
    /// Per-mille of `observe` calls answered from the cached previous
    /// snapshot instead of a fresh one.
    pub stale_observe_per_mille: u32,
    /// Logical age reported for a cache-served snapshot, milliseconds.
    pub stale_age_ms: u64,
}

impl ChaosConfig {
    /// No injected faults at all.
    pub const fn none() -> Self {
        Self {
            seed: 0,
            api_latency_ms: 0,
            apply_fail_per_mille: 0,
            stale_observe_per_mille: 0,
            stale_age_ms: 0,
        }
    }

    /// Parses the envelope. Absent knobs default to off, so a legacy
    /// `{"seed":7}` body is a valid plan.
    pub fn from_json(v: &Value) -> Option<Self> {
        check_version(v)?;
        let knob = |name: &str| v.get(name).map_or(Some(0), |k| k.as_u64());
        Some(Self {
            seed: knob("seed")?,
            api_latency_ms: knob("api_latency_ms")?,
            apply_fail_per_mille: knob("apply_fail_per_mille")? as u32,
            stale_observe_per_mille: knob("stale_observe_per_mille")? as u32,
            stale_age_ms: knob("stale_age_ms")?,
        })
    }

    /// Whether any fault class is enabled.
    pub fn is_active(&self) -> bool {
        self.api_latency_ms > 0 || self.apply_fail_per_mille > 0 || self.stale_observe_per_mille > 0
    }
}

impl serde::Serialize for ChaosConfig {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"v\":");
        WIRE_VERSION.serialize_json(out);
        out.push_str(",\"seed\":");
        self.seed.serialize_json(out);
        out.push_str(",\"api_latency_ms\":");
        self.api_latency_ms.serialize_json(out);
        out.push_str(",\"apply_fail_per_mille\":");
        self.apply_fail_per_mille.serialize_json(out);
        out.push_str(",\"stale_observe_per_mille\":");
        self.stale_observe_per_mille.serialize_json(out);
        out.push_str(",\"stale_age_ms\":");
        self.stale_age_ms.serialize_json(out);
        out.push('}');
    }
}

/// Error body for any non-200 reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// Human-readable cause.
    pub error: String,
    /// Whether retrying the same call can possibly succeed.
    pub retryable: bool,
}

impl serde::Serialize for ErrorBody {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"v\":");
        WIRE_VERSION.serialize_json(out);
        out.push_str(",\"error\":");
        self.error.serialize_json(out);
        out.push_str(",\"retryable\":");
        self.retryable.serialize_json(out);
        out.push('}');
    }
}

impl ErrorBody {
    /// Parses the envelope; unparseable bodies fall back to a
    /// non-retryable opaque error so the client never panics on a
    /// garbled reply.
    pub fn from_json(v: &Value) -> Option<Self> {
        check_version(v)?;
        Some(Self {
            error: v.get("error")?.as_str()?.to_owned(),
            retryable: v.get("retryable")?.as_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_version_tag_is_accepted_as_v1() {
        let legacy = serde_json::from_str("{\"seed\":7}").expect("parse");
        assert_eq!(check_version(&legacy), Some(WIRE_VERSION));
        let plan = ChaosConfig::from_json(&legacy).expect("legacy chaos body");
        assert_eq!(plan.seed, 7);
        assert!(!plan.is_active());
    }

    #[test]
    fn future_versions_are_rejected() {
        let v2 = serde_json::from_str("{\"v\":2,\"seed\":7}").expect("parse");
        assert_eq!(check_version(&v2), None);
        assert!(ChaosConfig::from_json(&v2).is_none());
    }

    #[test]
    fn chaos_config_round_trips() {
        let plan = ChaosConfig {
            seed: 42,
            api_latency_ms: 3,
            apply_fail_per_mille: 150,
            stale_observe_per_mille: 200,
            stale_age_ms: 30_000,
        };
        let json = serde_json::to_string(&plan).expect("serializes");
        let back = ChaosConfig::from_json(&serde_json::from_str(&json).expect("parses"))
            .expect("round-trips");
        assert_eq!(back, plan);
        assert!(json.starts_with("{\"v\":1,"), "{json}");
    }

    #[test]
    fn error_body_round_trips() {
        let body = ErrorBody {
            error: "injected unavailability".to_owned(),
            retryable: true,
        };
        let json = serde_json::to_string(&body).expect("serializes");
        let back =
            ErrorBody::from_json(&serde_json::from_str(&json).expect("parses")).expect("shape");
        assert_eq!(back, body);
    }
}
