//! A hand-rolled HTTP/1.1 subset: exactly what the loopback actuation
//! protocol needs, over `std::net` with no external dependencies.
//!
//! One request per connection (`Connection: close`), bodies framed by
//! `Content-Length`, everything else ignored. This is deliberately not
//! a general HTTP implementation — it exists so the wire boundary
//! between the reconciler and the cluster server is a real TCP socket
//! carrying real HTTP text, while the whole stack stays inside the
//! offline build environment.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Maximum accepted header block + body, a guard against a runaway
/// peer rather than a tuning knob.
const MAX_REQUEST_BYTES: usize = 4 << 20;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (e.g. `/v1/observe`).
    pub path: String,
    /// Decoded body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// One parsed HTTP response (client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Decoded body.
    pub body: String,
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

/// Reads bytes until the `\r\n\r\n` header terminator, then reads the
/// `Content-Length` body. Shared by both request and response parsing
/// (the framing is identical; only the first line differs).
fn read_message(stream: &mut TcpStream) -> io::Result<(String, String)> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_terminator(&buf) {
            break pos;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(invalid("header block too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed before the header terminator",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..header_end].to_vec())
        .map_err(|_| invalid("header block is not UTF-8"))?;
    let mut body_bytes = buf[header_end + 4..].to_vec();
    let content_length = content_length(&head)?;
    if content_length > MAX_REQUEST_BYTES {
        return Err(invalid("declared body too large"));
    }
    while body_bytes.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed mid-body",
            ));
        }
        body_bytes.extend_from_slice(&chunk[..n]);
    }
    body_bytes.truncate(content_length);
    let body = String::from_utf8(body_bytes).map_err(|_| invalid("body is not UTF-8"))?;
    Ok((head, body))
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn content_length(head: &str) -> io::Result<usize> {
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            return value
                .trim()
                .parse::<usize>()
                .map_err(|_| invalid("unparseable Content-Length"));
        }
    }
    Ok(0)
}

/// Reads and parses one request from an accepted connection.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let (head, body) = read_message(stream)?;
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| invalid("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| invalid("request line has no target"))?;
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body,
    })
}

/// Writes one JSON response and flushes. The connection is then done
/// (`Connection: close`).
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let text = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(text.as_bytes())?;
    stream.flush()
}

/// Sends one `POST` and reads the response, all within `timeout` per
/// socket operation. Each call is its own connection.
pub fn post(addr: SocketAddr, path: &str, body: &str, timeout: Duration) -> io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let text = format!(
        "POST {path} HTTP/1.1\r\nHost: faro-cluster\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(text.as_bytes())?;
    stream.flush()?;
    let (head, body) = read_message(&mut stream)?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid("unparseable status line"))?;
    Ok(Response { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn round_trips_a_request_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let req = read_request(&mut conn).expect("parse request");
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/echo");
            write_response(&mut conn, 200, &req.body).expect("write response");
        });
        let resp = post(addr, "/v1/echo", "{\"v\":1}", Duration::from_secs(5)).expect("post");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"v\":1}");
        server.join().expect("server thread");
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let req = read_request(&mut conn).expect("parse request");
            assert_eq!(req.body, "");
            write_response(&mut conn, 404, "{}").expect("write response");
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /missing HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("send");
        let (head, _) = read_message(&mut stream).expect("response");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        server.join().expect("server thread");
    }
}
