//! The in-process cluster the actuation server fronts.
//!
//! This is a *wall-clock* pod model, not a discrete-event simulator:
//! replicas started by an apply become ready only after a real
//! cold-start delay has elapsed on the host clock, so a driver polling
//! over HTTP sees the same convergence lag a Kubernetes operator sees
//! after patching a deployment. Service metrics follow the same
//! closed-form latency ramp as `examples/custom_backend.rs` — load
//! `u` inflates the observed tail as `p·(1 + 3u/(1−u))` — so policies
//! get a smooth, monotone signal without running a request-level
//! simulation inside the server.

use crate::wire::ApplyResponse;
use faro_core::rng::SplitMix64;
use faro_core::types::{ClusterSnapshot, DesiredState, JobObservation, JobSpec, ResourceModel};
use faro_core::units::{RatePerMin, SimTimeMs};
use std::sync::Arc;

/// One modeled job: its spec and the synthetic load that drives its
/// observed metrics.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// The job spec handed to policies verbatim.
    pub spec: JobSpec,
    /// Replicas ready at server start (no cold start for these).
    pub initial_replicas: u32,
    /// Per-minute arrival rates; the schedule advances with the
    /// *logical* timeline (one tick per fresh observe) and holds its
    /// last value when exhausted.
    pub rates_per_minute: Vec<RatePerMin>,
}

/// The server's cluster shape.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Total replica quota reported to policies.
    pub total_replicas: u32,
    /// Logical milliseconds per reconcile tick; the snapshot timeline
    /// advances by this much per fresh observe.
    pub tick_ms: u64,
    /// Wall-clock cold-start delay for a newly started replica.
    pub cold_start_ms: u64,
    /// The jobs this cluster serves.
    pub jobs: Vec<JobConfig>,
}

impl ClusterConfig {
    /// A small two-job demo cluster: one steady job and one with a
    /// mid-run surge, compressed cold starts so live loops converge in
    /// wall milliseconds rather than minutes.
    pub fn demo(cold_start_ms: u64) -> Self {
        Self {
            total_replicas: 16,
            tick_ms: 10_000,
            cold_start_ms,
            jobs: vec![
                JobConfig {
                    spec: JobSpec::resnet34("live-steady"),
                    initial_replicas: 2,
                    rates_per_minute: vec![RatePerMin::new(300.0); 12],
                },
                JobConfig {
                    spec: JobSpec::resnet34("live-surge"),
                    initial_replicas: 2,
                    rates_per_minute: [
                        120.0, 120.0, 120.0, 600.0, 900.0, 900.0, 600.0, 300.0, 120.0, 120.0,
                        120.0, 120.0,
                    ]
                    .map(RatePerMin::new)
                    .to_vec(),
                },
            ],
        }
    }
}

/// One job's mutable pod state.
#[derive(Debug, Clone)]
struct JobState {
    spec: Arc<JobSpec>,
    target: u32,
    ready: u32,
    /// Wall-clock instants (ms since epoch) at which cold-starting
    /// replicas become ready, unordered.
    pending: Vec<u64>,
    drop_rate: f64,
    history: Vec<RatePerMin>,
}

/// The cluster-in-a-process: pods, load, and the observation math.
///
/// All methods take the wall clock as an explicit argument so the
/// server passes real time and unit tests pass a hand-rolled one —
/// the model itself never reads `SystemTime`.
#[derive(Debug)]
pub struct ClusterModel {
    config: ClusterConfig,
    jobs: Vec<JobState>,
    /// Fresh observations served so far; the logical timeline is
    /// `seq * tick_ms`.
    seq: u64,
}

impl ClusterModel {
    /// Builds the cluster at its initial replica allocation.
    pub fn new(config: ClusterConfig) -> Self {
        let jobs = config
            .jobs
            .iter()
            .map(|j| JobState {
                spec: Arc::new(j.spec.clone()),
                target: j.initial_replicas,
                ready: j.initial_replicas,
                pending: Vec::new(),
                drop_rate: 0.0,
                history: Vec::new(),
            })
            .collect();
        Self {
            config,
            jobs,
            seq: 0,
        }
    }

    /// Promotes cold-started replicas whose deadline has passed.
    fn settle(&mut self, now_wall_ms: u64) {
        for job in &mut self.jobs {
            let before = job.pending.len();
            job.pending.retain(|&ready_at| ready_at > now_wall_ms);
            job.ready += (before - job.pending.len()) as u32;
        }
    }

    /// The current arrival rate for job `i` at logical minute `minute`
    /// (the schedule holds its last value when exhausted).
    fn rate_per_minute(&self, i: usize, minute: usize) -> RatePerMin {
        let rates = &self.config.jobs[i].rates_per_minute;
        match rates.get(minute) {
            Some(&r) => r,
            None => rates.last().copied().unwrap_or(RatePerMin::ZERO),
        }
    }

    /// Produces a fresh snapshot at the next logical tick and returns
    /// its sequence number.
    pub fn observe(&mut self, now_wall_ms: u64) -> (u64, ClusterSnapshot) {
        self.settle(now_wall_ms);
        let seq = self.seq;
        self.seq += 1;
        let logical_ms = seq.saturating_mul(self.config.tick_ms) as i64;
        let minute = (logical_ms / 60_000) as usize;
        let mut jobs = Vec::with_capacity(self.jobs.len());
        for i in 0..self.jobs.len() {
            let rate = self.rate_per_minute(i, minute);
            {
                let history = &mut self.jobs[i].history;
                if history.len() <= minute {
                    for m in history.len()..=minute {
                        let r = self.config.jobs[i].rates_per_minute.get(m).copied();
                        history.push(r.unwrap_or(rate));
                    }
                }
            }
            let job = &self.jobs[i];
            let per_sec = rate.per_sec();
            let processing = job.spec.processing_time;
            // Offered load on the ready replicas; the latency ramp
            // p·(1 + 3u/(1−u)) diverges as u → 1 and the queue grows
            // once utilization crosses 0.9.
            let served = f64::from(job.ready.max(1));
            let u = (per_sec * processing / served).min(0.999);
            let tail = if u < 1.0 {
                processing * (1.0 + 3.0 * u / (1.0 - u))
            } else {
                f64::INFINITY
            };
            let queue_len = if u > 0.9 {
                ((u - 0.9) * 200.0).round() as usize
            } else {
                0
            };
            jobs.push(JobObservation {
                spec: Arc::clone(&job.spec),
                target_replicas: job.target,
                ready_replicas: job.ready,
                queue_len,
                arrival_rate_history: Arc::new(job.history.clone()),
                recent_arrival_rate: per_sec,
                mean_processing_time: processing,
                recent_tail_latency: tail,
                drop_rate: job.drop_rate,
                class_target: None,
                class_ready: None,
            });
        }
        let snapshot = ClusterSnapshot {
            now: SimTimeMs::from_millis(logical_ms),
            resources: ResourceModel::replicas(faro_core::units::ReplicaCount::new(
                self.config.total_replicas,
            )),
            jobs,
        };
        (seq, snapshot)
    }

    /// Actuates a desired state: retargets each listed job, starting
    /// cold replicas (ready after the configured wall delay) or
    /// killing pending-then-ready ones. Unknown job indices are
    /// counted as failed and skipped; re-applying a satisfied state is
    /// a no-op, which is what makes client-side retry safe.
    pub fn apply(&mut self, desired: &DesiredState, now_wall_ms: u64) -> ApplyResponse {
        self.settle(now_wall_ms);
        let mut resp = ApplyResponse {
            applied: 0,
            failed: 0,
            replicas_started: 0,
        };
        for (id, decision) in desired.iter() {
            let Some(job) = self.jobs.get_mut(id.index()) else {
                resp.failed += 1;
                continue;
            };
            job.target = decision.target_replicas;
            job.drop_rate = decision.drop_rate;
            let current = job.ready + job.pending.len() as u32;
            if decision.target_replicas > current {
                let start = decision.target_replicas - current;
                let ready_at = now_wall_ms + self.config.cold_start_ms;
                job.pending
                    .extend(std::iter::repeat_n(ready_at, start as usize));
                resp.replicas_started += start;
            } else {
                let mut kill = current - decision.target_replicas;
                let from_pending = kill.min(job.pending.len() as u32);
                for _ in 0..from_pending {
                    job.pending.pop();
                }
                kill -= from_pending;
                job.ready -= kill;
            }
            resp.applied += 1;
        }
        resp
    }

    /// The configured logical tick, milliseconds.
    pub fn tick_ms(&self) -> u64 {
        self.config.tick_ms
    }
}

/// One seeded per-fault-class draw stream (mirrors the control-plane
/// chaos wrapper's stream splitting: enabling one class never shifts
/// another's draws).
#[derive(Debug)]
pub struct FaultStreams {
    stale: SplitMix64,
    fail: SplitMix64,
}

impl FaultStreams {
    /// Streams for `seed`, one per fault class.
    pub fn new(seed: u64) -> Self {
        Self {
            stale: SplitMix64::new(seed ^ 0x5A5A_0001),
            fail: SplitMix64::new(seed ^ 0x5A5A_0002),
        }
    }

    /// Draws whether this observe is served stale.
    pub fn draw_stale(&mut self, per_mille: u32) -> bool {
        self.stale.next_u64() % 1000 < u64::from(per_mille)
    }

    /// Draws whether this apply is refused.
    pub fn draw_fail(&mut self, per_mille: u32) -> bool {
        self.fail.next_u64() % 1000 < u64::from(per_mille)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faro_core::types::{JobDecision, JobId};

    fn model(cold_ms: u64) -> ClusterModel {
        ClusterModel::new(ClusterConfig::demo(cold_ms))
    }

    fn targets(list: &[(usize, u32)]) -> DesiredState {
        let mut d = DesiredState::new();
        for &(i, t) in list {
            d.set(
                JobId::new(i),
                JobDecision {
                    target_replicas: t,
                    drop_rate: 0.0,
                    classes: None,
                },
            );
        }
        d
    }

    #[test]
    fn cold_starts_gate_readiness_on_the_wall_clock() {
        let mut m = model(500);
        let desired = targets(&[(0, 6), (1, 2)]);
        let resp = m.apply(&desired, 1_000);
        assert_eq!(resp.applied, 2);
        assert_eq!(resp.replicas_started, 4);
        // Before the deadline the new replicas are visible as a
        // target/ready gap; after it they are ready.
        let (_, early) = m.observe(1_200);
        assert_eq!(early.jobs[0].target_replicas, 6);
        assert_eq!(early.jobs[0].ready_replicas, 2);
        let (_, late) = m.observe(1_600);
        assert_eq!(late.jobs[0].ready_replicas, 6);
    }

    #[test]
    fn scale_down_kills_pending_before_ready() {
        let mut m = model(10_000);
        m.apply(&targets(&[(0, 8)]), 0);
        // Nothing became ready yet; shrinking to 3 must cancel cold
        // starts first and keep all original ready replicas.
        let resp = m.apply(&targets(&[(0, 3)]), 100);
        assert_eq!(resp.replicas_started, 0);
        let (_, snap) = m.observe(200);
        assert_eq!(snap.jobs[0].target_replicas, 3);
        assert_eq!(snap.jobs[0].ready_replicas, 2);
        let (_, settled) = m.observe(20_000);
        assert_eq!(settled.jobs[0].ready_replicas, 3);
    }

    #[test]
    fn unknown_jobs_fail_without_poisoning_the_batch() {
        let mut m = model(100);
        let desired = targets(&[(0, 3), (9, 5)]);
        let resp = m.apply(&desired, 0);
        assert_eq!(resp.applied, 1);
        assert_eq!(resp.failed, 1);
    }

    #[test]
    fn overload_inflates_the_observed_tail() {
        let mut m = model(100);
        // One replica against the surge job's peak rate.
        m.apply(&targets(&[(1, 1)]), 0);
        let (_, snap) = m.observe(200);
        let calm = snap.jobs[0].recent_tail_latency;
        let surged = snap.jobs[1].recent_tail_latency;
        assert!(surged.is_finite());
        assert!(calm > 0.0);
    }

    #[test]
    fn fault_streams_replay_per_seed() {
        let draws = |seed: u64| {
            let mut s = FaultStreams::new(seed);
            (0..64).map(|_| s.draw_fail(300)).collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }
}
