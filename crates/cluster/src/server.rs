//! The cluster-in-a-process actuation server.
//!
//! A [`ClusterServer`] owns a [`ClusterModel`] behind a loopback TCP
//! listener and speaks the v1 HTTP/JSON protocol: `POST /v1/observe`,
//! `POST /v1/apply`, and `POST /v1/chaos` (live fault-injection
//! reconfiguration). Connections are served one at a time on a single
//! thread, so given a fixed chaos seed and a fixed request order the
//! server's behavior replays exactly — determinism across a real
//! process-style boundary is the whole point.

use crate::http::{read_request, write_response, Request};
use crate::model::{ClusterConfig, ClusterModel, FaultStreams};
use crate::wire::{
    ApplyRequest, ChaosConfig, ErrorBody, ObserveResponse, APPLY_PATH, CHAOS_PATH, OBSERVE_PATH,
};
use faro_core::types::ClusterSnapshot;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch on the host clock.
pub fn wall_now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

struct ServerState {
    model: ClusterModel,
    chaos: ChaosConfig,
    streams: FaultStreams,
    /// Last fresh observation, replayed when the stale-observe fault
    /// fires.
    cached: Option<(u64, ClusterSnapshot)>,
}

impl ServerState {
    fn handle(&mut self, req: &Request) -> (u16, String) {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", OBSERVE_PATH) | ("GET", OBSERVE_PATH) => self.observe(),
            ("POST", APPLY_PATH) => self.apply(&req.body),
            ("POST", CHAOS_PATH) => self.chaos(&req.body),
            _ => error_reply(
                404,
                &format!("no such endpoint: {} {}", req.method, req.path),
                false,
            ),
        }
    }

    fn observe(&mut self) -> (u16, String) {
        let stale = if self.cached.is_some() {
            self.streams.draw_stale(self.chaos.stale_observe_per_mille)
        } else {
            false
        };
        let body = if stale {
            let (seq, snapshot) = self.cached.clone().expect("invariant: checked above");
            ObserveResponse {
                seq,
                age_ms: self.chaos.stale_age_ms,
                snapshot,
            }
        } else {
            let (seq, snapshot) = self.model.observe(wall_now_ms());
            self.cached = Some((seq, snapshot.clone()));
            ObserveResponse {
                seq,
                age_ms: 0,
                snapshot,
            }
        };
        match serde_json::to_string(&body) {
            Ok(json) => (200, json),
            Err(e) => error_reply(503, &format!("snapshot serialization failed: {e:?}"), true),
        }
    }

    fn apply(&mut self, body: &str) -> (u16, String) {
        if self.streams.draw_fail(self.chaos.apply_fail_per_mille) {
            return error_reply(503, "injected apply unavailability", true);
        }
        let Ok(value) = serde_json::from_str(body) else {
            return error_reply(400, "apply body is not JSON", false);
        };
        let Some(req) = ApplyRequest::from_json(&value) else {
            return error_reply(400, "apply body does not match the v1 schema", false);
        };
        let resp = self.model.apply(&req.desired, wall_now_ms());
        match serde_json::to_string(&resp) {
            Ok(json) => (200, json),
            Err(e) => error_reply(503, &format!("apply serialization failed: {e:?}"), true),
        }
    }

    fn chaos(&mut self, body: &str) -> (u16, String) {
        let Ok(value) = serde_json::from_str(body) else {
            return error_reply(400, "chaos body is not JSON", false);
        };
        let Some(plan) = ChaosConfig::from_json(&value) else {
            return error_reply(400, "chaos body does not match the v1 schema", false);
        };
        self.chaos = plan;
        self.streams = FaultStreams::new(plan.seed);
        match serde_json::to_string(&plan) {
            Ok(json) => (200, json),
            Err(e) => error_reply(503, &format!("chaos serialization failed: {e:?}"), true),
        }
    }
}

fn error_reply(status: u16, message: &str, retryable: bool) -> (u16, String) {
    let body = ErrorBody {
        error: message.to_owned(),
        retryable,
    };
    let json = serde_json::to_string(&body).unwrap_or_else(|_| {
        "{\"v\":1,\"error\":\"unserializable\",\"retryable\":false}".to_owned()
    });
    (status, json)
}

/// The running server: spawn it, read its address, shut it down.
pub struct ClusterServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ClusterServer {
    /// Binds an ephemeral loopback port and serves the cluster on a
    /// background thread until [`ClusterServer::shutdown`] (or drop).
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the loopback listener cannot be bound.
    pub fn spawn(config: ClusterConfig) -> io::Result<Self> {
        Self::spawn_with_chaos(config, ChaosConfig::none())
    }

    /// Like [`ClusterServer::spawn`], with fault injection active from
    /// the first request (the loopback tests set the plan up front so
    /// no un-faulted warmup request shifts the seeded draw streams).
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the loopback listener cannot be bound.
    pub fn spawn_with_chaos(config: ClusterConfig, chaos: ChaosConfig) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let mut state = ServerState {
            model: ClusterModel::new(config),
            chaos,
            streams: FaultStreams::new(chaos.seed),
            cached: None,
        };
        let join = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut conn) = conn else { continue };
                serve_connection(&mut state, &mut conn);
            }
        });
        Ok(Self {
            addr,
            shutdown,
            join: Some(join),
        })
    }

    /// The loopback address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with one last connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ClusterServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(state: &mut ServerState, conn: &mut TcpStream) {
    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = conn.set_write_timeout(Some(Duration::from_secs(10)));
    let Ok(req) = read_request(conn) else {
        // Garbled or wakeup connection; nothing to answer.
        return;
    };
    if state.chaos.api_latency_ms > 0 {
        std::thread::sleep(Duration::from_millis(state.chaos.api_latency_ms));
    }
    let (status, body) = state.handle(&req);
    let _ = write_response(conn, status, &body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::post;
    use crate::wire::ApplyResponse;

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn serves_the_v1_protocol_end_to_end() {
        let server = ClusterServer::spawn(ClusterConfig::demo(50)).expect("spawn");
        let addr = server.addr();

        let obs = post(addr, OBSERVE_PATH, "{}", T).expect("observe");
        assert_eq!(obs.status, 200);
        let parsed = ObserveResponse::from_json(&serde_json::from_str(&obs.body).expect("json"))
            .expect("v1 observe body");
        assert_eq!(parsed.seq, 0);
        assert_eq!(parsed.age_ms, 0);
        assert_eq!(parsed.snapshot.jobs.len(), 2);

        let apply = post(
            addr,
            APPLY_PATH,
            "{\"v\":1,\"desired\":[{\"job\":0,\"target_replicas\":5,\"drop_rate\":0.0}]}",
            T,
        )
        .expect("apply");
        assert_eq!(apply.status, 200, "{}", apply.body);
        let parsed = ApplyResponse::from_json(&serde_json::from_str(&apply.body).expect("json"))
            .expect("v1 apply body");
        assert_eq!(parsed.applied, 1);
        assert_eq!(parsed.replicas_started, 3);

        let missing = post(addr, "/v2/observe", "{}", T).expect("unknown route");
        assert_eq!(missing.status, 404);
        server.shutdown();
    }

    #[test]
    fn chaos_endpoint_reconfigures_fault_injection() {
        let server = ClusterServer::spawn(ClusterConfig::demo(50)).expect("spawn");
        let addr = server.addr();
        let plan = post(
            addr,
            CHAOS_PATH,
            "{\"v\":1,\"seed\":9,\"apply_fail_per_mille\":1000}",
            T,
        )
        .expect("chaos");
        assert_eq!(plan.status, 200, "{}", plan.body);
        // Every apply now fails with a retryable 503.
        let apply = post(
            addr,
            APPLY_PATH,
            "{\"v\":1,\"desired\":[{\"job\":0,\"target_replicas\":3,\"drop_rate\":0.0}]}",
            T,
        )
        .expect("apply under chaos");
        assert_eq!(apply.status, 503);
        let err = ErrorBody::from_json(&serde_json::from_str(&apply.body).expect("json"))
            .expect("v1 error body");
        assert!(err.retryable);
        server.shutdown();
    }

    #[test]
    fn legacy_untagged_apply_bodies_are_accepted() {
        let server = ClusterServer::spawn(ClusterConfig::demo(50)).expect("spawn");
        let addr = server.addr();
        let apply = post(
            addr,
            APPLY_PATH,
            "{\"desired\":[{\"job\":1,\"target_replicas\":4,\"drop_rate\":0.25}]}",
            T,
        )
        .expect("legacy apply");
        assert_eq!(apply.status, 200, "{}", apply.body);
        server.shutdown();
    }
}
