//! The live actuation layer: a cluster-in-a-process HTTP/JSON server
//! and the wall-clock backend that drives it.
//!
//! Everything below the workspace's control plane so far has been
//! in-process: the simulator, the chaos wrapper, and test mocks all
//! share the driver's address space. This crate puts a real process
//! boundary under the same [`faro_control::ClusterBackend`] trait:
//!
//! ```text
//!   Driver ── Reconciler ── ResilientDriver
//!                                │ observe()/apply()
//!                           HttpBackend            (this crate)
//!                                │ HTTP/1.1 + JSON over loopback TCP
//!                           ClusterServer          (this crate)
//!                                │
//!                           ClusterModel: pods, cold starts, load
//! ```
//!
//! * [`server::ClusterServer`] serves the versioned v1 protocol
//!   (`POST /v1/observe`, `/v1/apply`, `/v1/chaos`) over a loopback
//!   listener, fronting a [`model::ClusterModel`] whose replicas cold
//!   start on the *host's* clock — actuation visibly lags intent, as
//!   it does on a real cluster.
//! * [`client::HttpBackend`] implements [`faro_control::Clock`] (the
//!   logical `round · tick` timeline), [`faro_control::WallClock`]
//!   (the host clock, as [`faro_core::units::WallTimeMs`]), and
//!   [`faro_control::ClusterBackend`] (observe/apply over the socket,
//!   every transport failure mapped into the
//!   [`faro_control::BackendError`] taxonomy).
//! * [`wire`] defines the v1 envelopes. Snapshot and desired-state
//!   bodies reuse the workspace's committed serializers byte-for-byte,
//!   and untagged (pre-versioning) payloads are accepted as v1.
//!
//! The resilient driver composes over all of it unchanged: retries,
//! circuit breaking, staleness tolerance, and desired-vs-observed
//! drift repair all act across the process boundary exactly as they
//! do in simulation — the loopback integration tests pin that down
//! under seeded server-side chaos.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod model;
pub mod server;
pub mod wire;

pub use client::{HttpBackend, LiveConfig};
pub use model::{ClusterConfig, ClusterModel, JobConfig};
pub use server::ClusterServer;
pub use wire::{
    ApplyRequest, ApplyResponse, ChaosConfig, ErrorBody, ObserveResponse, WIRE_VERSION,
};
