//! The wall-clock HTTP backend: a [`ClusterBackend`] whose cluster is
//! on the other side of a TCP socket.
//!
//! [`HttpBackend`] keeps the control plane's two timelines strictly
//! apart. Its [`Clock`] is *logical*: round `n` is at `n · tick`
//! [`SimTimeMs`], exactly like the simulator, so policies, telemetry,
//! and the resilient driver's staleness arithmetic behave identically
//! against a live server. Its [`WallClock`] is the host's physical
//! clock, used only for pacing sleeps, latency samples, and
//! wall-tagged telemetry — [`WallTimeMs`] has no conversion into the
//! logical timeline, so the two cannot be mixed by accident.
//!
//! A server-reported stale snapshot (`age_ms > 0`) is mapped onto the
//! logical timeline as `snapshot.now = clock.now() − age`, which is
//! precisely what [`faro_control::ResilientDriver`]'s staleness window
//! checks — the cache-tolerance ladder works unchanged across the
//! process boundary.

use crate::http::post;
use crate::wire::{
    ApplyRequest, ApplyResponse, ChaosConfig, ErrorBody, ObserveResponse, APPLY_PATH, CHAOS_PATH,
    OBSERVE_PATH,
};
use faro_control::{ActuationReport, BackendError, Clock, ClusterBackend, WallClock};
use faro_core::types::{ClusterSnapshot, DesiredState};
use faro_core::units::{DurationMs, ReplicaCount, SimTimeMs, WallTimeMs};
use faro_telemetry::{TelemetryEvent, TelemetrySink};
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// How an [`HttpBackend`] paces and bounds its loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveConfig {
    /// Logical milliseconds per round (the snapshot timeline step).
    pub tick_ms: u64,
    /// Wall-clock pause between rounds. Zero runs the loop flat out —
    /// the logical timeline still advances by `tick_ms` per round, so
    /// tests compress minutes of cluster time into milliseconds.
    pub interval: Duration,
    /// Rounds before the clock reports the horizon and the driver
    /// stops.
    pub horizon_rounds: u64,
    /// Per-socket-operation timeout for every HTTP call.
    pub request_timeout: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            tick_ms: 10_000,
            interval: Duration::from_millis(0),
            horizon_rounds: 30,
            request_timeout: Duration::from_secs(5),
        }
    }
}

/// A [`ClusterBackend`] speaking the v1 HTTP/JSON actuation protocol.
#[derive(Debug)]
pub struct HttpBackend {
    addr: SocketAddr,
    cfg: LiveConfig,
    round: u64,
    /// Wall-clock apply latencies, milliseconds, one per successful
    /// or failed attempt — the live loop's p99 comes from here.
    apply_latencies_ms: Vec<f64>, // faro-lint: allow(raw-time-arith): measurement samples feeding the metrics percentile API, raw ms by contract
}

impl HttpBackend {
    /// A backend talking to the server at `addr`.
    pub fn connect(addr: SocketAddr, cfg: LiveConfig) -> Self {
        Self {
            addr,
            cfg,
            round: 0,
            apply_latencies_ms: Vec::new(),
        }
    }

    /// Reconfigures the server's fault injection (`POST /v1/chaos`).
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the call fails like any other API call.
    pub fn configure_chaos(&mut self, plan: ChaosConfig) -> Result<(), BackendError> {
        let body = serde_json::to_string(&plan)
            .map_err(|e| unavailable(format!("chaos plan serialization failed: {e:?}")))?;
        let resp = post(self.addr, CHAOS_PATH, &body, self.cfg.request_timeout)
            .map_err(|e| self.transport_error(e))?;
        if resp.status == 200 {
            Ok(())
        } else {
            Err(reply_error(resp.status, &resp.body))
        }
    }

    /// Wall-clock apply latencies recorded so far, milliseconds.
    pub fn apply_latencies_ms(&self) -> &[f64] {
        &self.apply_latencies_ms
    }

    /// Rounds completed so far on the logical timeline.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    fn transport_error(&self, e: io::Error) -> BackendError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => BackendError::Timeout {
                elapsed: DurationMs::from_millis(self.cfg.request_timeout.as_millis() as i64),
            },
            _ => unavailable(format!("transport: {e}")),
        }
    }
}

fn unavailable(reason: String) -> BackendError {
    BackendError::Unavailable { reason }
}

/// Maps a non-200 reply onto the backend error taxonomy. The error
/// body's `retryable` flag is advisory here — every v1 server error
/// is transport-shaped and the resilient driver's budget bounds the
/// retries either way.
fn reply_error(status: u16, body: &str) -> BackendError {
    let detail = serde_json::from_str(body)
        .ok()
        .as_ref()
        .and_then(ErrorBody::from_json)
        .map(|e| e.error)
        .unwrap_or_else(|| format!("status {status} with unparseable body"));
    unavailable(format!("server refused ({status}): {detail}"))
}

impl Clock for HttpBackend {
    fn now(&self) -> SimTimeMs {
        SimTimeMs::from_millis(self.round.saturating_mul(self.cfg.tick_ms) as i64)
    }

    fn advance(&mut self) -> Option<SimTimeMs> {
        if self.round >= self.cfg.horizon_rounds {
            return None;
        }
        if !self.cfg.interval.is_zero() {
            std::thread::sleep(self.cfg.interval);
        }
        self.round += 1;
        Some(self.now())
    }

    fn advance_with(&mut self, sink: &mut dyn TelemetrySink) -> Option<SimTimeMs> {
        let at = self.advance()?;
        if sink.enabled() {
            sink.event(
                at,
                &TelemetryEvent::WallClockTick {
                    wall_ms: self.wall_now().as_millis(),
                    round: self.round,
                },
            );
        }
        Some(at)
    }
}

impl WallClock for HttpBackend {
    fn wall_now(&self) -> WallTimeMs {
        let ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0);
        WallTimeMs::from_millis(ms)
    }
}

impl ClusterBackend for HttpBackend {
    fn observe(&mut self) -> Result<ClusterSnapshot, BackendError> {
        let resp = post(self.addr, OBSERVE_PATH, "{}", self.cfg.request_timeout)
            .map_err(|e| self.transport_error(e))?;
        if resp.status != 200 {
            return Err(reply_error(resp.status, &resp.body));
        }
        let value = serde_json::from_str(&resp.body)
            .map_err(|e| unavailable(format!("observe body is not JSON: {e:?}")))?;
        let parsed = ObserveResponse::from_json(&value)
            .ok_or_else(|| unavailable("observe body does not match the v1 schema".to_owned()))?;
        let mut snapshot = parsed.snapshot;
        // Re-key the server's report onto this clock's logical
        // timeline: fresh snapshots land at `now`, stale ones land
        // `age_ms` behind it, where the resilient driver's staleness
        // window can judge them.
        snapshot.now = self.now() - DurationMs::from_millis(parsed.age_ms as i64);
        Ok(snapshot)
    }

    fn apply(&mut self, desired: &DesiredState) -> Result<ActuationReport, BackendError> {
        let req = ApplyRequest {
            desired: desired.clone(),
        };
        let body = serde_json::to_string(&req)
            .map_err(|e| unavailable(format!("apply serialization failed: {e:?}")))?;
        let started = Instant::now();
        let result = post(self.addr, APPLY_PATH, &body, self.cfg.request_timeout);
        self.apply_latencies_ms
            .push(started.elapsed().as_secs_f64() * 1e3);
        let resp = result.map_err(|e| self.transport_error(e))?;
        if resp.status != 200 {
            return Err(reply_error(resp.status, &resp.body));
        }
        let value = serde_json::from_str(&resp.body)
            .map_err(|e| unavailable(format!("apply body is not JSON: {e:?}")))?;
        let parsed = ApplyResponse::from_json(&value)
            .ok_or_else(|| unavailable("apply body does not match the v1 schema".to_owned()))?;
        Ok(ActuationReport {
            jobs_applied: parsed.applied,
            jobs_failed: parsed.failed,
            replicas_started: ReplicaCount::new(parsed.replicas_started),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ClusterConfig;
    use crate::server::ClusterServer;
    use faro_telemetry::TraceSink;

    fn quick() -> LiveConfig {
        LiveConfig {
            horizon_rounds: 3,
            ..LiveConfig::default()
        }
    }

    #[test]
    fn the_logical_clock_ticks_independently_of_wall_time() {
        let server = ClusterServer::spawn(ClusterConfig::demo(20)).expect("spawn");
        let mut backend = HttpBackend::connect(server.addr(), quick());
        assert_eq!(backend.now(), SimTimeMs::from_millis(0));
        assert_eq!(backend.advance(), Some(SimTimeMs::from_millis(10_000)));
        assert_eq!(backend.advance(), Some(SimTimeMs::from_millis(20_000)));
        assert_eq!(backend.advance(), Some(SimTimeMs::from_millis(30_000)));
        assert_eq!(backend.advance(), None, "horizon bounds the loop");
        server.shutdown();
    }

    #[test]
    fn observe_and_apply_cross_the_socket() {
        let server = ClusterServer::spawn(ClusterConfig::demo(20)).expect("spawn");
        let mut backend = HttpBackend::connect(server.addr(), quick());
        let snapshot = backend.observe().expect("observe");
        assert_eq!(snapshot.jobs.len(), 2);
        assert_eq!(snapshot.now, SimTimeMs::from_millis(0), "fresh = now");

        let mut desired = DesiredState::new();
        desired.set(
            faro_core::types::JobId::new(0),
            faro_core::types::JobDecision {
                target_replicas: 5,
                drop_rate: 0.0,
                classes: None,
            },
        );
        let report = backend.apply(&desired).expect("apply");
        assert_eq!(report.jobs_applied, 1);
        assert_eq!(report.replicas_started, ReplicaCount::new(3));
        assert_eq!(backend.apply_latencies_ms().len(), 1);
        server.shutdown();
    }

    #[test]
    fn advance_with_emits_a_wall_clock_tick() {
        let server = ClusterServer::spawn(ClusterConfig::demo(20)).expect("spawn");
        let mut backend = HttpBackend::connect(server.addr(), quick());
        let mut sink = TraceSink::new();
        backend.advance_with(&mut sink).expect("one round");
        let kinds: Vec<&str> = sink.entries().map(|e| e.event.kind()).collect();
        assert_eq!(kinds, vec!["WallClockTick"]);
        server.shutdown();
    }
}
