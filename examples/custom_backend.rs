//! A custom [`ClusterBackend`] driven by the stock reconciler — no
//! simulator involved.
//!
//! The control plane only needs two things from a cluster: a snapshot
//! (`observe`) and an actuation surface (`apply`), paced by a `Clock`.
//! This example implements both over a toy in-memory "cluster" whose
//! load ramps up over time, then runs the same `Reconciler` the
//! discrete-event simulator uses — with a real policy (AIAD) and the
//! rotating-admission quota — against it. A kube-rs implementation of
//! the same trait would slot in identically.
//!
//! Run with: `cargo run --example custom_backend`

use faro::control::{ActuationReport, BackendError};
use faro::core::types::{JobObservation, ResourceModel};
use faro::core::units::DurationMs;
use faro::core::OutageClamp;
use faro::prelude::*;
use std::sync::Arc;

/// A toy cluster: per-job targets applied instantly, arrival rates
/// following a fixed ramp, latency rising when a job is under-provisioned.
struct RampBackend {
    now: SimTimeMs,
    tick: DurationMs,
    horizon: SimTimeMs,
    quota: ReplicaCount,
    specs: Vec<Arc<JobSpec>>,
    targets: Vec<u32>,
    drop_rates: Vec<f64>,
    history: Vec<Vec<RatePerMin>>,
}

impl RampBackend {
    fn new(quota: u32, names: &[&str]) -> Self {
        Self {
            now: SimTimeMs::from_secs(-10.0),
            tick: DurationMs::from_secs(10.0),
            horizon: SimTimeMs::from_secs(600.0),
            quota: ReplicaCount::new(quota),
            specs: names
                .iter()
                .map(|n| Arc::new(JobSpec::resnet34(*n)))
                .collect(),
            targets: vec![1; names.len()],
            drop_rates: vec![0.0; names.len()],
            history: vec![Vec::new(); names.len()],
        }
    }

    /// Offered load for job `j` at time `t`: a ramp that doubles over
    /// the run, phase-shifted per job.
    fn rate(&self, j: usize, t: f64) -> f64 {
        let base = 4.0 + 2.0 * j as f64;
        base * (1.0 + (t.max(0.0) / self.horizon.as_secs()) + 0.2 * j as f64)
    }
}

impl Clock for RampBackend {
    fn now(&self) -> SimTimeMs {
        self.now
    }

    fn advance(&mut self) -> Option<SimTimeMs> {
        let next = self.now + self.tick;
        if next >= self.horizon {
            return None;
        }
        self.now = next;
        Some(next)
    }
}

impl ClusterBackend for RampBackend {
    // An in-process mock never fails, so both calls always return Ok;
    // a backend fronting a real API would surface timeouts and partial
    // applies as typed BackendErrors here.
    fn observe(&mut self) -> Result<ClusterSnapshot, BackendError> {
        let now = self.now;
        let mut jobs = Vec::with_capacity(self.specs.len());
        for j in 0..self.specs.len() {
            let rate = self.rate(j, now.as_secs());
            self.history[j].push(RatePerMin::new(rate * 60.0));
            let spec = &self.specs[j];
            // One replica serves ~1/processing_time req/s; queueing
            // pushes the tail past the SLO once load nears capacity.
            let capacity = f64::from(self.targets[j]) / spec.processing_time;
            let utilization = (rate / capacity).min(0.99);
            let tail = spec.processing_time * (1.0 + 3.0 * utilization / (1.0 - utilization));
            jobs.push(JobObservation {
                spec: Arc::clone(spec),
                target_replicas: self.targets[j],
                ready_replicas: self.targets[j],
                queue_len: 0,
                arrival_rate_history: Arc::new(self.history[j].clone()),
                recent_arrival_rate: rate,
                mean_processing_time: spec.processing_time,
                recent_tail_latency: tail,
                drop_rate: self.drop_rates[j],
                class_target: None,
                class_ready: None,
            });
        }
        Ok(ClusterSnapshot {
            now,
            resources: ResourceModel::replicas(self.quota),
            jobs,
        })
    }

    fn apply(&mut self, desired: &DesiredState) -> Result<ActuationReport, BackendError> {
        let mut report = ActuationReport::default();
        for (id, d) in desired.iter() {
            let Some(t) = self.targets.get_mut(id.index()) else {
                report.jobs_failed += 1;
                continue;
            };
            report.replicas_started += d.target_replicas.saturating_sub(*t);
            *t = d.target_replicas;
            self.drop_rates[id.index()] = d.drop_rate;
            report.jobs_applied += 1;
        }
        Ok(report)
    }
}

fn main() {
    let mut backend = RampBackend::new(12, &["imagenet", "sentiment", "whisper"]);
    let mut reconciler = Reconciler::new(Box::new(Aiad::default()), Box::new(OutageClamp::new(12)));
    let stats = reconciler
        .run(&mut backend)
        .expect("in-process mock backend never fails");

    println!("policy:            {}", reconciler.policy_name());
    println!("reconcile rounds:  {}", stats.rounds);
    println!("replicas started:  {}", stats.replicas_started);
    println!(
        "admission:         {} requested, {} granted ({} clamped, {} unsatisfiable rounds)",
        stats.admission.requested_replicas,
        stats.admission.granted_replicas,
        stats.admission.clamped_rounds,
        stats.admission.unsatisfiable_rounds,
    );
    println!("final targets:     {:?}", backend.targets);
    assert_eq!(stats.rounds, 60, "one round per 10 s tick over 600 s");
    assert!(
        backend.targets.iter().sum::<u32>() <= 12,
        "admission keeps the cluster within quota"
    );
}
