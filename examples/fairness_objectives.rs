//! Cluster objectives and fairness: run Faro-Sum, Faro-Fair, and
//! Faro-FairSum on an asymmetric workload and compare how evenly
//! utility is spread across jobs (paper Sec. 3.2 and Fig. 12).
//!
//! Run with: `cargo run --release --example fairness_objectives`

use faro::bench::harness::{run_matrix, ExperimentSpec};
use faro::prelude::*;

fn main() {
    // Six jobs, tight 14-replica quota: not everyone can be satisfied,
    // so the objective choice decides who suffers.
    let set = WorkloadSet::n_jobs(6, 3, 1400.0).truncated_eval(80);
    let gamma = ClusterObjective::recommended_gamma(set.len());
    let spec = ExperimentSpec::new(
        vec![
            PolicyKind::faro(ClusterObjective::Sum),
            PolicyKind::faro(ClusterObjective::Fair),
            PolicyKind::faro(ClusterObjective::FairSum { gamma }),
        ],
        vec![14],
    )
    .with_trials(2);

    let results = run_matrix(&spec, &set, None);
    println!(
        "{:<16} {:>12} {:>14} {:>16}",
        "objective", "cluster_lost", "worst_job_lost", "max-min spread"
    );
    for r in &results {
        // Average per-job lost utility across trials.
        let mut per_job = vec![0.0f64; set.len()];
        for report in &r.reports {
            for (j, job) in report.jobs.iter().enumerate() {
                per_job[j] += job.lost_utility() / r.reports.len() as f64;
            }
        }
        let worst = per_job.iter().cloned().fold(0.0, f64::max);
        let best = per_job.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{:<16} {:>12.3} {:>14.3} {:>16.3}",
            r.policy,
            r.lost_utility_mean,
            worst,
            worst - best
        );
    }
    println!("\nfair objectives trade a little total utility for a tighter spread");
}
