//! Probabilistic workload forecasting: train Faro's N-HiTS predictor
//! (Gaussian head) on a synthetic Azure-like trace, compare its point
//! prediction against a damped moving average, and show how the
//! sampled prediction band covers the real fluctuation (paper Fig. 8).
//!
//! Run with: `cargo run --release --example workload_forecasting`

use faro::forecast::naive::DampedMovingAverage;
use faro::forecast::nhits::NHits;
use faro::forecast::{rmse, Forecaster, ProbForecaster};
use faro::trace::generator::{TraceKind, TraceSpec};
use rand::prelude::*;

fn main() {
    let spec = TraceSpec {
        kind: TraceKind::AzureLike,
        seed: 8,
        days: 11,
        ..Default::default()
    };
    let trace = spec.generate();
    let (train, eval) = trace.split_days(10);

    let (input, horizon) = (60, 40);
    println!("training probabilistic N-HiTS (input {input} min -> horizon {horizon} min)...");
    let mut model = NHits::quick(input, horizon, 3);
    model
        .fit(&train.rates_per_minute)
        .expect("long enough series");

    let mut naive = DampedMovingAverage::new(0.3, input, horizon).expect("valid config");
    naive
        .fit(&train.rates_per_minute)
        .expect("non-empty series");

    // Evaluate on a handful of day-11 windows.
    let series = &eval.rates_per_minute;
    let mut rng = StdRng::seed_from_u64(1);
    let mut nhits_err = 0.0;
    let mut naive_err = 0.0;
    let mut covered = 0usize;
    let mut total = 0usize;
    let mut windows = 0.0;
    for start in (input..series.len() - horizon).step_by(97) {
        let ctx = &series[start - input..start];
        let truth = &series[start..start + horizon];
        let point = model.predict(ctx).expect("fitted");
        let flat = naive.predict(ctx).expect("fitted");
        nhits_err += rmse(&point, truth);
        naive_err += rmse(&flat, truth);
        windows += 1.0;

        // 100 samples -> min/max band (Figure 8c).
        let dist = model.predict_distribution(ctx).expect("fitted");
        let samples = dist.sample_many(&mut rng, 100);
        for (k, &y) in truth.iter().enumerate() {
            let lo = samples.iter().map(|s| s[k]).fold(f64::INFINITY, f64::min);
            let hi = samples
                .iter()
                .map(|s| s[k])
                .fold(f64::NEG_INFINITY, f64::max);
            if (lo..=hi).contains(&y) {
                covered += 1;
            }
            total += 1;
        }
    }
    println!("point RMSE over {windows} windows:");
    println!(
        "  N-HiTS               {:>8.2} req/min",
        nhits_err / windows
    );
    println!(
        "  damped moving average{:>8.2} req/min",
        naive_err / windows
    );
    println!(
        "probabilistic min-max band covers {:.1}% of ground-truth minutes",
        100.0 * covered as f64 / total as f64
    );
    println!("(the band, not the point forecast, is what Faro plans against)");
}
