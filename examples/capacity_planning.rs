//! Capacity planning with the matched simulator: sweep the replica
//! quota under Faro-Sum to find the smallest cluster that meets all
//! SLOs (the paper's notion of a "right-sized" cluster, Sec. 6).
//!
//! Run with: `cargo run --release --example capacity_planning`

use faro::bench::harness::{run_matrix, ExperimentSpec};
use faro::prelude::*;

fn main() {
    let set = WorkloadSet::n_jobs(6, 11, 1200.0).truncated_eval(90);
    println!(
        "planning capacity for {} jobs over a 90-minute trace slice...\n",
        set.len()
    );

    let sizes: Vec<u32> = vec![8, 12, 16, 20, 24, 28];
    let spec = ExperimentSpec::new(vec![PolicyKind::faro(ClusterObjective::Sum)], sizes.clone())
        .with_trials(2);
    let results = run_matrix(&spec, &set, None);

    println!(
        "{:>8} {:>14} {:>12}",
        "replicas", "slo_violation", "lost_utility"
    );
    let mut right_size = None;
    for r in &results {
        println!(
            "{:>8} {:>13.2}% {:>12.3}",
            r.cluster_size,
            100.0 * r.violation_mean,
            r.lost_utility_mean
        );
        if right_size.is_none() && r.violation_mean < 0.04 {
            right_size = Some(r.cluster_size);
        }
    }
    match right_size {
        Some(s) => println!(
            "\nright-sized cluster: {s} replicas (first size with <4% cluster SLO violations)"
        ),
        None => println!("\nno tested size met the <4% violation goal; extend the sweep"),
    }
}
