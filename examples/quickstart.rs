//! Quickstart: autoscale two ML inference jobs with Faro on a small
//! simulated cluster.
//!
//! Run with: `cargo run --release --example quickstart`

use faro::core::predictor::{FlatPredictor, RatePredictor};
use faro::prelude::*;

fn main() {
    // Two jobs: a steady light one and a ramping heavy one. Rates are
    // requests per minute; ResNet34 takes ~180 ms per request and its
    // SLO is a 720 ms 99th-percentile latency.
    let light = JobSetup {
        spec: JobSpec::resnet34("light"),
        rates_per_minute: vec![120.0; 40],
        initial_replicas: 1,
    };
    let mut ramp: Vec<f64> = (0..20).map(|i| 60.0 + f64::from(i) * 90.0).collect();
    ramp.extend(vec![1800.0; 20]);
    let heavy = JobSetup {
        spec: JobSpec::resnet34("heavy"),
        rates_per_minute: ramp,
        initial_replicas: 1,
    };

    // Faro with the Sum objective. In a real deployment the predictors
    // are N-HiTS models trained on history (see the forecasting
    // example); a flat recent-mean predictor keeps this demo instant.
    let predictors: Vec<Box<dyn RatePredictor>> = (0..2)
        .map(|_| {
            Box::new(FlatPredictor {
                lookback: 3,
                sigma_fraction: 0.2,
            }) as Box<dyn RatePredictor>
        })
        .collect();
    let faro = FaroAutoscaler::new(FaroConfig::new(ClusterObjective::Sum), predictors);
    println!("policy: {}", faro.name());

    let config = SimConfig {
        total_replicas: 12,
        seed: 42,
        ..Default::default()
    };
    // Attach a trace sink to capture the control loop's decision
    // records alongside the run report.
    let mut trace = TraceSink::new();
    let outcome = Simulation::new(config, vec![light, heavy])
        .expect("valid setup")
        .driver()
        .unwrap()
        .policy(Box::new(faro))
        .telemetry(&mut trace)
        .run()
        .expect("simulation completes")
        .into_outcome();
    let report = &outcome.report;

    println!(
        "control loop: {} rounds, {} replicas started, {} trace events",
        outcome.stats.rounds,
        outcome.stats.replicas_started,
        trace.len(),
    );
    println!(
        "\nper-job results over {} minutes:",
        report.jobs[0].utility_per_minute.len()
    );
    for job in &report.jobs {
        println!(
            "  {:<8} requests {:>7}  SLO violations {:>6} ({:>5.2}%)  drops {:>4}  mean utility {:.3}",
            job.name,
            job.total_requests,
            job.violations,
            100.0 * job.violation_rate,
            job.drops,
            job.mean_utility,
        );
    }
    println!(
        "\ncluster: violation rate {:.3}%  lost utility {:.3} (max {})",
        100.0 * report.cluster_violation_rate,
        report.avg_lost_cluster_utility,
        report.jobs.len(),
    );
}
