//! Multi-tenant autoscaling on the paper's 10-job Azure+Twitter
//! workload mix: Faro-FairSum vs the FairShare, AIAD, and Oneshot
//! baselines on a slightly oversubscribed 32-replica cluster.
//!
//! Run with: `cargo run --release --example multi_tenant_autoscaling`

use faro::bench::harness::{run_matrix, summarize, ExperimentSpec};
use faro::prelude::*;

fn main() {
    // A 2-hour slice of the compressed day-11 workload keeps the demo
    // under a minute; drop `truncated_eval` for the full day.
    let set = WorkloadSet::paper_ten_jobs(42).truncated_eval(120);
    let gamma = ClusterObjective::recommended_gamma(set.len());

    println!("training N-HiTS predictors on days 1-10 of each trace...");
    let trained = set.train_predictors(7);

    let spec = ExperimentSpec::new(
        vec![
            PolicyKind::faro(ClusterObjective::FairSum { gamma }),
            PolicyKind::Aiad,
            PolicyKind::FairShare,
            PolicyKind::Oneshot,
        ],
        vec![32],
    )
    .with_trials(2);

    let results = run_matrix(&spec, &set, Some(&trained));
    println!("\n{}", summarize(&results));

    let faro = &results[0];
    let best_baseline = results[1..]
        .iter()
        .min_by(|a, b| {
            a.violation_mean
                .partial_cmp(&b.violation_mean)
                .expect("finite")
        })
        .expect("baselines present");
    println!(
        "Faro-FairSum lowers the cluster SLO violation rate {:.1}x vs the best baseline ({})",
        best_baseline.violation_mean / faro.violation_mean.max(1e-9),
        best_baseline.policy,
    );
}
