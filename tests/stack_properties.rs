//! Cross-crate property tests: conservation laws and component
//! contracts that must hold for any workload.

use faro::core::baselines::Aiad;
use faro::core::opt::{Fidelity, JobWorkload, MultiTenantProblem};
use faro::core::types::{JobSpec, ResourceModel, Slo};
use faro::core::ClusterObjective;
use faro::sim::{
    ColdStartSpike, FaultPlan, JobSetup, MetricOutage, MetricOutageMode, NodeOutage,
    ReplicaCrashes, SimConfig, SimRun, Simulation,
};
use faro::solver::{Cobyla, DifferentialEvolution, NelderMead, Solver};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Simulator conservation: every arriving request is eventually
    /// completed or dropped (the run flushes at the final minute, so
    /// only the last minute's in-flight handful may be outstanding).
    #[test]
    fn simulator_conserves_requests(
        rates in prop::collection::vec(10.0f64..800.0, 5..15),
        seed in 0u64..50,
        replicas in 2u32..8,
    ) {
        let cfg = SimConfig { total_replicas: replicas.max(2), seed, ..Default::default() };
        let setup = JobSetup {
            spec: JobSpec::resnet34("prop"),
            rates_per_minute: rates,
            initial_replicas: 1,
        };
        let report = Simulation::new(cfg, vec![setup]).unwrap()
            .driver().unwrap().policy(Box::new(Aiad::default()))
            .run()
            .unwrap()
            .into_outcome()
            .report;
        let job = &report.jobs[0];
        let arrived: f64 = job.arrivals_per_minute.iter().sum();
        prop_assert!(job.total_requests as f64 <= arrived + 1.0);
        // At most one queue's worth of requests may still be in flight.
        prop_assert!(
            arrived - job.total_requests as f64 <= 64.0,
            "arrived {arrived} vs accounted {}",
            job.total_requests
        );
        prop_assert!(job.violations >= job.drops);
    }

    /// Conservation survives fault injection: requests killed by
    /// replica crashes are accounted (as violating completions), not
    /// silently lost, for any crash rate.
    #[test]
    fn simulator_conserves_requests_under_crashes(
        rates in prop::collection::vec(60.0f64..600.0, 6..12),
        seed in 0u64..30,
        mttf in 60.0f64..400.0,
    ) {
        let cfg = SimConfig { total_replicas: 5, seed, ..Default::default() };
        let setup = JobSetup {
            spec: JobSpec::resnet34("crashy"),
            rates_per_minute: rates,
            initial_replicas: 3,
        };
        let plan = FaultPlan {
            replica_crashes: Some(ReplicaCrashes { mttf_secs: mttf }),
            ..FaultPlan::none()
        };
        let report = Simulation::new(cfg, vec![setup]).unwrap()
            .with_faults(plan).unwrap()
            .driver().unwrap().policy(Box::new(Aiad::default()))
            .run()
            .unwrap()
            .into_outcome()
            .report;
        let job = &report.jobs[0];
        let arrived: f64 = job.arrivals_per_minute.iter().sum();
        prop_assert!(job.total_requests as f64 <= arrived + 1.0);
        prop_assert!(
            arrived - job.total_requests as f64 <= 64.0,
            "arrived {arrived} vs accounted {} (crash_killed {})",
            job.total_requests,
            job.crash_killed
        );
        prop_assert!(job.violations >= job.crash_killed + job.drops);
        prop_assert!((0.0..=1.0).contains(&job.availability));
    }

    /// The multi-tenant optimizer's integer output never exceeds the
    /// quota and never starves a job, for any workload mix.
    #[test]
    fn optimizer_allocation_valid(
        lambdas in prop::collection::vec(0.5f64..60.0, 2..6),
        quota_extra in 0u32..24,
    ) {
        let n = lambdas.len() as u32;
        let quota = n + quota_extra;
        let jobs: Vec<JobWorkload> = lambdas
            .iter()
            .map(|&l| JobWorkload::constant(l, 0.18, Slo::paper_default(), 1.0))
            .collect();
        let p = MultiTenantProblem::new(
            jobs,
            ResourceModel::replicas(faro::core::units::ReplicaCount::new(quota)),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap();
        let alloc = p.solve(&Cobyla::fast(), &vec![1; lambdas.len()]).unwrap();
        let mut xs = p.integerize(&alloc);
        prop_assert!(xs.iter().sum::<u32>() <= quota, "{xs:?} quota {quota}");
        prop_assert!(xs.iter().all(|&x| x >= 1));
        p.shrink(&mut xs, &alloc.drop_rates);
        prop_assert!(xs.iter().sum::<u32>() <= quota);
        prop_assert!(xs.iter().all(|&x| x >= 1));
    }

    /// All three solvers agree (within tolerance) on a smooth convex
    /// problem — the relaxed objective is solvable by any of them
    /// (paper Fig. 5, right cluster of points).
    #[test]
    fn solvers_agree_on_relaxed_problem(lambda in 5.0f64..40.0) {
        let jobs = vec![JobWorkload::constant(lambda, 0.18, Slo::paper_default(), 1.0)];
        let p = MultiTenantProblem::new(
            jobs,
            ResourceModel::replicas(faro::core::units::ReplicaCount::new(32)),
            ClusterObjective::Sum,
            Fidelity::Relaxed,
        )
        .unwrap();
        let adapter_value = |solver: &dyn Solver| {
            let alloc = p.solve(solver, &[1]).unwrap();
            alloc.objective_value
        };
        let cobyla = adapter_value(&Cobyla::default());
        let nm = adapter_value(&NelderMead::default());
        let de = adapter_value(&DifferentialEvolution {
            max_generations: 200,
            ..Default::default()
        });
        let best = cobyla.max(nm).max(de);
        prop_assert!(best - cobyla < 0.08, "cobyla {cobyla} vs best {best}");
        prop_assert!(best - nm < 0.08, "nelder-mead {nm} vs best {best}");
        prop_assert!(best - de < 0.08, "de {de} vs best {best}");
    }
}

#[test]
fn fault_injection_is_deterministic_across_runs() {
    // Every fault class armed at once; two runs from the same seed
    // must produce byte-identical reports.
    let plan = FaultPlan {
        replica_crashes: Some(ReplicaCrashes { mttf_secs: 300.0 }),
        node_outage: Some(NodeOutage {
            start_secs: 240.0,
            duration_secs: 180.0,
            quota_fraction: 0.5,
        }),
        cold_start_spike: Some(ColdStartSpike {
            start_secs: 60.0,
            duration_secs: 120.0,
            median_multiplier: 3.0,
            sigma: 0.4,
        }),
        metric_outage: Some(MetricOutage {
            start_secs: 120.0,
            duration_secs: 180.0,
            jobs: vec![faro::core::types::JobId::new(0)],
            mode: MetricOutageMode::Stale,
        }),
    };
    let run = || {
        let cfg = SimConfig {
            total_replicas: 6,
            seed: 17,
            ..Default::default()
        };
        let setups = vec![
            JobSetup {
                spec: JobSpec::resnet34("a"),
                rates_per_minute: vec![300.0; 10],
                initial_replicas: 2,
            },
            JobSetup {
                spec: JobSpec::resnet34("b"),
                rates_per_minute: vec![500.0; 10],
                initial_replicas: 2,
            },
        ];
        let report = Simulation::new(cfg, setups)
            .unwrap()
            .with_faults(plan.clone())
            .unwrap()
            .driver()
            .unwrap()
            .policy(Box::new(Aiad::default()))
            .run()
            .unwrap()
            .into_outcome()
            .report;
        serde_json::to_string(&report).unwrap()
    };
    assert_eq!(
        run(),
        run(),
        "same seed + same fault plan must replay identically"
    );
}

#[test]
fn forecaster_feeds_autoscaler() {
    // Fit a tiny N-HiTS on a synthetic series and drive Faro with it.
    use faro::core::policy::Policy;
    use faro::core::predictor::{ProbabilisticPredictor, RatePredictor};
    use faro::core::types::{ClusterSnapshot, JobObservation};
    use faro::core::{FaroAutoscaler, FaroConfig};
    use faro::forecast::nhits::NHits;
    use faro::forecast::Forecaster;

    let series: Vec<f64> = (0..300)
        .map(|i| 600.0 + 300.0 * (i as f64 / 24.0).sin())
        .collect();
    let mut model = NHits::quick(15, 7, 2);
    model.fit(&series).expect("fit succeeds");
    let predictors: Vec<Box<dyn RatePredictor>> =
        vec![Box::new(ProbabilisticPredictor::new(Box::new(model)))];
    let mut cfg = FaroConfig::new(ClusterObjective::Sum);
    cfg.samples = 8;
    let mut faro = FaroAutoscaler::new(cfg, predictors);

    let obs = JobObservation {
        spec: std::sync::Arc::new(JobSpec::resnet34("nn-driven")),
        target_replicas: 1,
        ready_replicas: 1,
        queue_len: 0,
        arrival_rate_history: std::sync::Arc::new(
            series[series.len() - 15..]
                .iter()
                .map(|&v| faro::core::units::RatePerMin::new(v))
                .collect(),
        ),
        recent_arrival_rate: 10.0,
        mean_processing_time: 0.18,
        recent_tail_latency: 0.2,
        drop_rate: 0.0,
        class_target: None,
        class_ready: None,
    };
    let snap = ClusterSnapshot {
        now: faro::core::units::SimTimeMs::ZERO,
        resources: ResourceModel::replicas(faro::core::units::ReplicaCount::new(16)),
        jobs: vec![obs],
    };
    let ds = faro.decide(&snap);
    // ~600-900 req/min = 10-15 req/s at 180 ms needs >= 3 replicas.
    let d0 = ds
        .get(faro::core::types::JobId::new(0))
        .expect("job 0 decided");
    assert!(d0.target_replicas >= 3, "{ds:?}");
    assert!(d0.target_replicas <= 16);
}
