//! End-to-end integration tests: the full stack (traces -> predictors
//! -> Faro policy -> simulator -> reports) on short workloads.

use faro::bench::harness::{run_matrix, ExperimentSpec};
use faro::bench::policies::{Ablation, PolicyKind};
use faro::bench::WorkloadSet;
use faro::core::ClusterObjective;

fn small_set() -> WorkloadSet {
    WorkloadSet::n_jobs(4, 21, 1200.0).truncated_eval(45)
}

#[test]
fn faro_beats_static_and_oneshot_when_constrained() {
    // A busy mid-day slice with real trained predictors: the setting
    // where Faro's predictive cross-job allocation pays off.
    let set = WorkloadSet::n_jobs(4, 21, 1200.0).eval_window(120, 60);
    let trained = set.train_predictors(3);
    let spec = ExperimentSpec::new(
        vec![
            PolicyKind::faro(ClusterObjective::Sum),
            PolicyKind::FairShare,
            PolicyKind::Oneshot,
        ],
        vec![10],
    )
    .with_trials(2);
    let results = run_matrix(&spec, &set, Some(&trained));
    let faro = &results[0];
    for baseline in &results[1..] {
        assert!(
            faro.violation_mean <= baseline.violation_mean * 1.1,
            "Faro ({:.4}) should not lose to {} ({:.4})",
            faro.violation_mean,
            baseline.policy,
            baseline.violation_mean
        );
    }
}

#[test]
fn deterministic_full_stack_replay() {
    let set = small_set();
    let spec =
        ExperimentSpec::new(vec![PolicyKind::faro(ClusterObjective::Sum)], vec![12]).with_trials(1);
    let a = run_matrix(&spec, &set, None);
    let b = run_matrix(&spec, &set, None);
    assert_eq!(a[0].violation_mean, b[0].violation_mean);
    assert_eq!(a[0].lost_utility_mean, b[0].lost_utility_mean);
    assert_eq!(
        a[0].reports[0].cluster_utility_per_minute,
        b[0].reports[0].cluster_utility_per_minute
    );
}

#[test]
fn relaxation_ablation_hurts() {
    // Removing the relaxation leaves the precise plateau objective: the
    // local solver stalls and allocations are poor (paper Fig. 16's
    // largest ablation effect: 2.1x-3.7x).
    let set = small_set();
    let full = PolicyKind::faro(ClusterObjective::FairSum { gamma: 4.0 });
    let ablated = PolicyKind::Faro {
        objective: ClusterObjective::FairSum { gamma: 4.0 },
        ablation: Ablation {
            no_relaxation: true,
            ..Default::default()
        },
    };
    let spec = ExperimentSpec::new(vec![full, ablated], vec![12]).with_trials(2);
    let results = run_matrix(&spec, &set, None);
    assert!(
        results[0].lost_utility_mean <= results[1].lost_utility_mean * 1.05,
        "full Faro {:.3} should beat no-relaxation {:.3}",
        results[0].lost_utility_mean,
        results[1].lost_utility_mean
    );
}

#[test]
fn every_policy_stays_within_quota_and_serves() {
    let set = small_set();
    let quota = 8u32;
    let mut policies = PolicyKind::standard_nine(set.len());
    policies.push(PolicyKind::Cilantro);
    let spec = ExperimentSpec::new(policies, vec![quota]).with_trials(1);
    let results = run_matrix(&spec, &set, None);
    for r in &results {
        let report = &r.reports[0];
        assert_eq!(report.quota, quota);
        for job in &report.jobs {
            assert!(
                job.total_requests > 0,
                "{}: job {} starved",
                r.policy,
                job.name
            );
            assert!(job.violations <= job.total_requests);
            assert!(job.drops <= job.violations);
            assert!((0.0..=1.0).contains(&job.violation_rate));
            for &u in &job.utility_per_minute {
                assert!((0.0..=1.0).contains(&u), "{}: utility {u}", r.policy);
            }
        }
        assert!(r.lost_utility_mean >= 0.0 && r.lost_utility_mean <= set.len() as f64);
    }
}

#[test]
fn oversubscription_degrades_everyone_but_faro_least() {
    let set = WorkloadSet::n_jobs(4, 21, 1200.0).eval_window(120, 45);
    let spec = ExperimentSpec::new(
        vec![PolicyKind::faro(ClusterObjective::Sum), PolicyKind::Aiad],
        vec![6, 16],
    )
    .with_trials(1);
    let results = run_matrix(&spec, &set, None);
    let get = |policy: &str, size: u32| {
        results
            .iter()
            .find(|r| r.policy == policy && r.cluster_size == size)
            .expect("cell exists")
            .violation_mean
    };
    // Both degrade when constrained (small tolerance for noise on the
    // short slice).
    assert!(get("Faro-Sum", 6) >= get("Faro-Sum", 16) - 0.01);
    assert!(get("AIAD", 6) >= get("AIAD", 16) - 0.01);
    // Faro stays ahead in the constrained cluster.
    assert!(get("Faro-Sum", 6) <= get("AIAD", 6) * 1.15 + 0.01);
}
