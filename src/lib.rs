//! Faro: SLO-aware autoscaling for on-premises containerized ML
//! inference clusters.
//!
//! This is the facade crate of the workspace, re-exporting the full
//! stack behind one dependency. It reproduces the EuroSys '25 paper
//! *"A House United Within Itself: SLO-Awareness for On-Premises
//! Containerized ML Inference Clusters via Faro"*:
//!
//! - [`core`]: the Faro autoscaler — utilities, cluster objectives,
//!   relaxed optimization, hierarchical solving, the hybrid
//!   predictive/reactive loop, admission strategies, and every
//!   baseline policy.
//! - [`control`]: the backend-agnostic control plane — the
//!   `ClusterBackend` and `Clock` traits and the
//!   Observe → Decide → Admit → Actuate reconciler.
//! - [`telemetry`]: the deterministic, sim-time-keyed tracing and
//!   metrics layer — `TelemetrySink`, the zero-cost `NoopSink`, the
//!   ring-buffer `TraceSink` (JSONL), and the `AggregateSink`
//!   (Prometheus snapshots, per-job SLO-attainment timelines).
//! - [`queueing`]: M/M/c / M/D/c latency estimation and the relaxed
//!   plateau-free estimator.
//! - [`solver`]: COBYLA-style, Nelder-Mead, and Differential Evolution
//!   constrained optimizers.
//! - [`nn`] and [`forecast`]: the neural substrate and the N-HiTS /
//!   LSTM / DeepAR-style / AR arrival-rate forecasters.
//! - [`trace`]: synthetic Azure/Twitter-like workload generation.
//! - [`sim`]: the deployment-matched discrete-event simulator of Ray
//!   Serve atop Kubernetes.
//! - [`metrics`]: percentiles, windows, SLO accounting, Kendall-Tau.
//! - [`cluster`]: the live actuation layer — a cluster-in-a-process
//!   HTTP/JSON server (`ClusterServer`) and the wall-clock
//!   `HttpBackend` that drives the same control plane over real TCP
//!   with the versioned v1 wire schema.
//! - [`bench`](mod@bench): the experiment harness regenerating the
//!   paper's tables and figures.
//!
//! # Quickstart
//!
//! ```
//! use faro::prelude::*;
//!
//! // Two small jobs, ten minutes of trace, Faro-Sum vs the quota.
//! let set = WorkloadSet::n_jobs(2, 7, 400.0).truncated_eval(10);
//! let policy = PolicyKind::faro(ClusterObjective::Sum).build(&set, None, 0);
//! let config = SimConfig { total_replicas: 8, seed: 1, ..Default::default() };
//! let outcome = Simulation::new(config, set.setups(1))
//!     .unwrap()
//!     .driver()
//!     .unwrap()
//!     .policy(policy)
//!     .run()
//!     .unwrap()
//!     .into_outcome();
//! assert!(outcome.report.cluster_violation_rate < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use faro_bench as bench;
pub use faro_cluster as cluster;
pub use faro_control as control;
pub use faro_core as core;
pub use faro_forecast as forecast;
pub use faro_metrics as metrics;
pub use faro_nn as nn;
pub use faro_queueing as queueing;
pub use faro_sim as sim;
pub use faro_solver as solver;
pub use faro_telemetry as telemetry;
pub use faro_trace as trace;

/// The types almost every Faro program touches, importable in one
/// line: `use faro::prelude::*;`.
///
/// Covers configuring and running a simulation
/// ([`Simulation`](prelude::Simulation), [`SimConfig`](prelude::SimConfig),
/// [`JobSetup`](prelude::JobSetup), [`RunOutcome`](prelude::RunOutcome),
/// [`FaultPlan`](prelude::FaultPlan)), choosing a policy
/// ([`PolicyKind`](prelude::PolicyKind), [`Policy`](prelude::Policy),
/// [`ClusterObjective`](prelude::ClusterObjective), the
/// [`Aiad`](prelude::Aiad)/[`FairShare`](prelude::FairShare) baselines),
/// workload generation ([`WorkloadSet`](prelude::WorkloadSet)), observing
/// a run ([`TelemetrySink`](prelude::TelemetrySink),
/// [`NoopSink`](prelude::NoopSink), [`TraceSink`](prelude::TraceSink),
/// [`AggregateSink`](prelude::AggregateSink)), and driving a custom
/// backend ([`ClusterBackend`](prelude::ClusterBackend),
/// [`Clock`](prelude::Clock), [`Driver`](prelude::Driver),
/// [`Reconciler`](prelude::Reconciler)).
pub mod prelude {
    pub use faro_bench::{PolicyKind, WorkloadSet};
    pub use faro_control::{
        Clock, ClusterBackend, Driver, DriverError, DriverOutcome, Reconciler, ResilienceConfig,
        ResilientDriver, RunReport, RunStats, WallClock,
    };
    pub use faro_core::admission::ClampToQuota;
    pub use faro_core::baselines::{Aiad, FairShare};
    pub use faro_core::policy::Policy;
    pub use faro_core::types::{ClusterSnapshot, DesiredState, JobSpec};
    pub use faro_core::units::{RatePerMin, ReplicaCount, SimTimeMs, WallTimeMs};
    pub use faro_core::{ClusterObjective, FaroAutoscaler, FaroConfig, FaroError};
    #[allow(deprecated)] // re-exported for the shim's one-release grace period
    pub use faro_sim::Runner;
    pub use faro_sim::{
        ClusterReport, FaultPlan, JobSetup, RunOutcome, SimConfig, SimRun, Simulation,
    };
    pub use faro_telemetry::{AggregateSink, NoopSink, Tee, TelemetrySink, TraceSink};
}
