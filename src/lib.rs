//! Faro: SLO-aware autoscaling for on-premises containerized ML
//! inference clusters.
//!
//! This is the facade crate of the workspace, re-exporting the full
//! stack behind one dependency. It reproduces the EuroSys '25 paper
//! *"A House United Within Itself: SLO-Awareness for On-Premises
//! Containerized ML Inference Clusters via Faro"*:
//!
//! - [`core`]: the Faro autoscaler — utilities, cluster objectives,
//!   relaxed optimization, hierarchical solving, the hybrid
//!   predictive/reactive loop, admission strategies, and every
//!   baseline policy.
//! - [`control`]: the backend-agnostic control plane — the
//!   `ClusterBackend` and `Clock` traits and the
//!   Observe → Decide → Admit → Actuate reconciler.
//! - [`queueing`]: M/M/c / M/D/c latency estimation and the relaxed
//!   plateau-free estimator.
//! - [`solver`]: COBYLA-style, Nelder-Mead, and Differential Evolution
//!   constrained optimizers.
//! - [`nn`] and [`forecast`]: the neural substrate and the N-HiTS /
//!   LSTM / DeepAR-style / AR arrival-rate forecasters.
//! - [`trace`]: synthetic Azure/Twitter-like workload generation.
//! - [`sim`]: the deployment-matched discrete-event simulator of Ray
//!   Serve atop Kubernetes.
//! - [`metrics`]: percentiles, windows, SLO accounting, Kendall-Tau.
//! - [`bench`]: the experiment harness regenerating the paper's tables
//!   and figures.
//!
//! # Quickstart
//!
//! ```
//! use faro::bench::{PolicyKind, WorkloadSet};
//! use faro::core::ClusterObjective;
//! use faro::sim::{SimConfig, Simulation};
//!
//! // Two small jobs, ten minutes of trace, Faro-Sum vs the quota.
//! let set = WorkloadSet::n_jobs(2, 7, 400.0).truncated_eval(10);
//! let policy = PolicyKind::faro(ClusterObjective::Sum).build(&set, None, 0);
//! let config = SimConfig { total_replicas: 8, seed: 1, ..Default::default() };
//! let report = Simulation::new(config, set.setups(1)).unwrap().run(policy).unwrap();
//! assert!(report.cluster_violation_rate < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use faro_bench as bench;
pub use faro_control as control;
pub use faro_core as core;
pub use faro_forecast as forecast;
pub use faro_metrics as metrics;
pub use faro_nn as nn;
pub use faro_queueing as queueing;
pub use faro_sim as sim;
pub use faro_solver as solver;
pub use faro_trace as trace;
